// Package cache implements the in-network caching extension sketched in
// the paper's future work (§VII: "a feasible in-network caching method
// that builds on top of the basic DMap scheme").
//
// Each AS keeps a bounded LRU cache of recently resolved GUID→NA
// mappings with a TTL. A cache hit answers at intra-AS latency; the cost
// is bounded staleness: a mapping updated after it was cached is served
// stale until the TTL expires — the same freshness trade-off the paper
// rejects for DNS at long TTLs, which is why the TTL here is a tunable
// measured by the caching experiment.
//
// Time is the simulation's Micros clock, keeping the package free of
// wall-clock dependencies and bit-for-bit reproducible.
package cache

import (
	"container/list"
	"fmt"

	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/store"
	"dmap/internal/topology"
)

// Cache is a single AS's query cache. It is not safe for concurrent use;
// the simulator drives each AS from one goroutine.
type Cache struct {
	capacity int
	ttl      topology.Micros
	lru      *list.List // front = most recently used
	m        map[guid.GUID]*list.Element

	hits, misses, expired int64
}

type item struct {
	g        guid.GUID
	e        store.Entry
	cachedAt topology.Micros
}

// New creates a cache holding up to capacity entries that expire ttl
// after insertion. Both must be positive.
func New(capacity int, ttl topology.Micros) (*Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity must be positive, got %d", capacity)
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("cache: ttl must be positive, got %d", ttl)
	}
	return &Cache{
		capacity: capacity,
		ttl:      ttl,
		lru:      list.New(),
		m:        make(map[guid.GUID]*list.Element, capacity),
	}, nil
}

// Len returns the number of live entries (including not-yet-collected
// expired ones).
func (c *Cache) Len() int { return c.lru.Len() }

// Get returns the cached mapping for g at the given time, along with the
// time it was cached (for staleness accounting). Expired entries are
// evicted on access.
func (c *Cache) Get(g guid.GUID, now topology.Micros) (store.Entry, topology.Micros, bool) {
	el, ok := c.m[g]
	if !ok {
		c.misses++
		return store.Entry{}, 0, false
	}
	it := el.Value.(*item)
	if now-it.cachedAt > c.ttl {
		c.lru.Remove(el)
		delete(c.m, g)
		c.expired++
		c.misses++
		return store.Entry{}, 0, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return it.e, it.cachedAt, true
}

// Put caches a freshly resolved mapping, evicting the LRU entry at
// capacity. Re-putting an existing GUID refreshes both value and TTL.
func (c *Cache) Put(g guid.GUID, e store.Entry, now topology.Micros) {
	if el, ok := c.m[g]; ok {
		it := el.Value.(*item)
		it.e = e
		it.cachedAt = now
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*item).g)
	}
	c.m[g] = c.lru.PushFront(&item{g: g, e: e, cachedAt: now})
}

// Invalidate drops g (e.g. when the querier detects staleness per
// §III-D2 and re-resolves).
func (c *Cache) Invalidate(g guid.GUID) bool {
	el, ok := c.m[g]
	if !ok {
		return false
	}
	c.lru.Remove(el)
	delete(c.m, g)
	return true
}

// Stats reports cumulative counters.
type Stats struct {
	Hits    int64
	Misses  int64
	Expired int64
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{Hits: c.hits, Misses: c.misses, Expired: c.expired}
}

// PublishTo copies the cache's counters and size into reg as gauges
// under prefix (e.g. "cache" → "cache.hits", "cache.size"). The cache
// is single-goroutine by design, so this snapshot-style publication —
// called from the owning goroutine at a quiescent point — is how its
// numbers reach a concurrently scraped registry.
func (c *Cache) PublishTo(reg *metrics.Registry, prefix string) {
	reg.Gauge(prefix + ".hits").Set(float64(c.hits))
	reg.Gauge(prefix + ".misses").Set(float64(c.misses))
	reg.Gauge(prefix + ".expired").Set(float64(c.expired))
	reg.Gauge(prefix + ".size").Set(float64(c.Len()))
	reg.Gauge(prefix + ".hit_rate").Set(c.HitRate())
}

// HitRate returns hits / (hits + misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
