package cache

import (
	"testing"

	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/netaddr"
	"dmap/internal/store"
	"dmap/internal/topology"
)

func entryAt(name string, as int) store.Entry {
	return store.Entry{
		GUID:    guid.New(name),
		NAs:     []store.NA{{AS: as, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}},
		Version: 1,
	}
}

const ms = topology.Micros(1000)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, ms); err == nil {
		t.Error("capacity 0 should fail")
	}
	if _, err := New(1, 0); err == nil {
		t.Error("ttl 0 should fail")
	}
}

func TestPutGetWithinTTL(t *testing.T) {
	c, err := New(4, 100*ms)
	if err != nil {
		t.Fatal(err)
	}
	e := entryAt("a", 7)
	c.Put(e.GUID, e, 0)
	got, cachedAt, ok := c.Get(e.GUID, 50*ms)
	if !ok || got.NAs[0].AS != 7 || cachedAt != 0 {
		t.Fatalf("Get = (%+v, %v, %v)", got, cachedAt, ok)
	}
	if c.HitRate() != 1 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestTTLExpiry(t *testing.T) {
	c, _ := New(4, 100*ms)
	e := entryAt("a", 7)
	c.Put(e.GUID, e, 0)
	if _, _, ok := c.Get(e.GUID, 100*ms); !ok {
		t.Fatal("exactly at TTL should still hit")
	}
	if _, _, ok := c.Get(e.GUID, 101*ms); ok {
		t.Fatal("past TTL should miss")
	}
	st := c.Stats()
	if st.Expired != 1 {
		t.Errorf("expired = %d, want 1", st.Expired)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, expired entry should be evicted", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := New(2, 1000*ms)
	a, b, d := entryAt("a", 1), entryAt("b", 2), entryAt("d", 3)
	c.Put(a.GUID, a, 0)
	c.Put(b.GUID, b, 1)
	// Touch a so b becomes LRU.
	if _, _, ok := c.Get(a.GUID, 2); !ok {
		t.Fatal("a should hit")
	}
	c.Put(d.GUID, d, 3)
	if _, _, ok := c.Get(b.GUID, 4); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if _, _, ok := c.Get(a.GUID, 4); !ok {
		t.Error("a should survive")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestRefreshOnPut(t *testing.T) {
	c, _ := New(2, 100*ms)
	e := entryAt("a", 1)
	c.Put(e.GUID, e, 0)
	e2 := e
	e2.Version = 2
	c.Put(e.GUID, e2, 90*ms) // refresh near expiry
	got, cachedAt, ok := c.Get(e.GUID, 150*ms)
	if !ok {
		t.Fatal("refreshed entry should hit past the original TTL")
	}
	if got.Version != 2 || cachedAt != 90*ms {
		t.Errorf("got version %d cachedAt %v", got.Version, cachedAt)
	}
	if c.Len() != 1 {
		t.Errorf("refresh must not duplicate: Len = %d", c.Len())
	}
}

func TestInvalidate(t *testing.T) {
	c, _ := New(2, 100*ms)
	e := entryAt("a", 1)
	c.Put(e.GUID, e, 0)
	if !c.Invalidate(e.GUID) {
		t.Error("Invalidate should report true")
	}
	if c.Invalidate(e.GUID) {
		t.Error("double Invalidate should report false")
	}
	if _, _, ok := c.Get(e.GUID, 1); ok {
		t.Error("invalidated entry should miss")
	}
}

func TestStatsCounters(t *testing.T) {
	c, _ := New(2, 100*ms)
	e := entryAt("a", 1)
	c.Get(e.GUID, 0) // miss
	c.Put(e.GUID, e, 0)
	c.Get(e.GUID, 1)      // hit
	c.Get(e.GUID, 200*ms) // expired miss
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Expired != 1 {
		t.Errorf("stats = %+v", st)
	}
	if rate := c.HitRate(); rate != 1.0/3 {
		t.Errorf("hit rate = %v", rate)
	}
}

func TestHitRateEmpty(t *testing.T) {
	c, _ := New(1, ms)
	if c.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
}

func TestManyEntriesStayBounded(t *testing.T) {
	c, _ := New(32, 1000*ms)
	for i := 0; i < 1000; i++ {
		e := entryAt(string(rune('a'+i%64))+string(rune('A'+i/64)), i)
		c.Put(e.GUID, e, topology.Micros(i))
	}
	if c.Len() > 32 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}

func TestPublishTo(t *testing.T) {
	reg := metrics.NewRegistry()
	c, err := New(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	g := guid.New("pub")
	c.Get(g, 0) // miss
	c.Put(g, store.Entry{}, 0)
	c.Get(g, 1) // hit
	c.PublishTo(reg, "cache")
	snap := reg.Snapshot()
	for name, want := range map[string]float64{
		"cache.hits":     1,
		"cache.misses":   1,
		"cache.size":     1,
		"cache.hit_rate": 0.5,
	} {
		if got := snap.Gauges[name]; got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
}
