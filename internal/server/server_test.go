package server

import (
	"net"
	"testing"
	"time"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/store"
	"dmap/internal/wire"
)

func startNode(t *testing.T) (*Node, string) {
	t.Helper()
	n := New(nil, nil)
	addr, err := n.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n, addr
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func testEntry() store.Entry {
	return store.Entry{
		GUID:    guid.New("raw"),
		NAs:     []store.NA{{AS: 1, Addr: netaddr.AddrFromOctets(192, 0, 2, 9)}},
		Version: 3,
	}
}

func TestRawProtocolRoundTrip(t *testing.T) {
	n, addr := startNode(t)
	conn := dial(t, addr)

	// Insert.
	payload, err := wire.AppendEntry(nil, testEntry())
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.MsgInsert, payload); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgInsertAck {
		t.Fatalf("insert reply = (%v, %v)", typ, err)
	}
	if n.Store().Len() != 1 {
		t.Fatalf("store len = %d", n.Store().Len())
	}

	// Lookup hit.
	if err := wire.WriteFrame(conn, wire.MsgLookup, wire.AppendGUID(nil, testEntry().GUID)); err != nil {
		t.Fatal(err)
	}
	typ, body, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgLookupResp {
		t.Fatalf("lookup reply = (%v, %v)", typ, err)
	}
	resp, err := wire.DecodeLookupResp(body)
	if err != nil || !resp.Found || resp.Entry.Version != 3 {
		t.Fatalf("lookup resp = (%+v, %v)", resp, err)
	}

	// Lookup miss.
	if err := wire.WriteFrame(conn, wire.MsgLookup, wire.AppendGUID(nil, guid.New("missing"))); err != nil {
		t.Fatal(err)
	}
	_, body, err = wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := wire.DecodeLookupResp(body); err != nil || resp.Found {
		t.Fatalf("miss resp = (%+v, %v)", resp, err)
	}

	// Delete.
	if err := wire.WriteFrame(conn, wire.MsgDelete, wire.AppendGUID(nil, testEntry().GUID)); err != nil {
		t.Fatal(err)
	}
	typ, body, err = wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgDeleteAck || len(body) != 1 || body[0] != 1 {
		t.Fatalf("delete reply = (%v, %v, %v)", typ, body, err)
	}

	// Ping.
	if err := wire.WriteFrame(conn, wire.MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(conn); err != nil || typ != wire.MsgPong {
		t.Fatalf("ping reply = (%v, %v)", typ, err)
	}

	st := n.Stats()
	if st.Inserts != 1 || st.Lookups != 2 || st.Hits != 1 || st.Deletes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMalformedFrameClosesConnection(t *testing.T) {
	n, addr := startNode(t)
	conn := dial(t, addr)

	// An insert frame with garbage payload must not crash the node; the
	// peer gets a MsgError explaining why, then the (desynchronized)
	// connection is closed and the bad request counted.
	if err := wire.WriteFrame(conn, wire.MsgInsert, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	typ, body, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgError {
		t.Fatalf("want MsgError reply, got (%v, %v)", typ, err)
	}
	if reason, err := wire.DecodeError(body); err != nil || reason == "" {
		t.Fatalf("error reason = (%q, %v)", reason, err)
	}
	if _, _, err := wire.ReadFrame(conn); err == nil {
		t.Fatal("expected closed connection after the error reply")
	}
	// The node still serves new connections.
	conn2 := dial(t, addr)
	if err := wire.WriteFrame(conn2, wire.MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(conn2); err != nil || typ != wire.MsgPong {
		t.Fatalf("node dead after malformed frame: (%v, %v)", typ, err)
	}
	if n.Stats().BadRequests == 0 {
		t.Error("malformed frame should be counted")
	}
}

func TestUnknownFrameType(t *testing.T) {
	_, addr := startNode(t)
	conn := dial(t, addr)
	if err := wire.WriteFrame(conn, wire.MsgType(200), nil); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	if typ, _, err := wire.ReadFrame(conn); err != nil || typ != wire.MsgError {
		t.Fatalf("want MsgError reply, got (%v, %v)", typ, err)
	}
	if _, _, err := wire.ReadFrame(conn); err == nil {
		t.Fatal("unknown frame should close the connection")
	}
}

func TestDrainRejectsWritesServesReads(t *testing.T) {
	n, addr := startNode(t)
	conn := dial(t, addr)

	// Seed one entry while healthy.
	payload, err := wire.AppendEntry(nil, testEntry())
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.MsgInsert, payload); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(conn); err != nil || typ != wire.MsgInsertAck {
		t.Fatalf("healthy insert: (%v, %v)", typ, err)
	}

	n.Drain()
	if !n.Draining() {
		t.Fatal("Draining() false after Drain()")
	}

	// Writes are rejected with MsgError on a live connection — no hang,
	// no disconnect.
	if err := wire.WriteFrame(conn, wire.MsgInsert, payload); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	typ, body, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgError {
		t.Fatalf("draining insert: (%v, %v), want MsgError", typ, err)
	}
	if reason, _ := wire.DecodeError(body); reason == "" {
		t.Error("empty drain reason")
	}
	if err := wire.WriteFrame(conn, wire.MsgDelete, wire.AppendGUID(nil, testEntry().GUID)); err != nil {
		t.Fatal(err)
	}
	if typ, _, err = wire.ReadFrame(conn); err != nil || typ != wire.MsgError {
		t.Fatalf("draining delete: (%v, %v), want MsgError", typ, err)
	}

	// Reads still served on the same connection.
	if err := wire.WriteFrame(conn, wire.MsgLookup, wire.AppendGUID(nil, testEntry().GUID)); err != nil {
		t.Fatal(err)
	}
	typ, body, err = wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgLookupResp {
		t.Fatalf("draining lookup: (%v, %v)", typ, err)
	}
	resp, err := wire.DecodeLookupResp(body)
	if err != nil || !resp.Found {
		t.Fatalf("draining lookup lost the entry: (%+v, %v)", resp, err)
	}

	if st := n.Stats(); st.Rejects != 2 {
		t.Errorf("rejects = %d, want 2", st.Rejects)
	}

	// Resume restores writes.
	n.Resume()
	if err := wire.WriteFrame(conn, wire.MsgInsert, payload); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(conn); err != nil || typ != wire.MsgInsertAck {
		t.Fatalf("post-resume insert: (%v, %v)", typ, err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	_, addr := startNode(t)
	conn := dial(t, addr)
	// Claim a payload beyond MaxFrame; the server must drop the
	// connection without allocating it.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(wire.MsgInsert)}
	if _, err := conn.Write(hostile); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, _, err := wire.ReadFrame(conn); err == nil {
		t.Fatal("expected closed connection")
	}
}

func TestCloseIsIdempotentAndStopsAccepting(t *testing.T) {
	n, addr := startNode(t)
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
	if _, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		// Dial may succeed briefly on some platforms via backlog; try a
		// round trip which must fail.
		conn := dial(t, addr)
		if err := wire.WriteFrame(conn, wire.MsgPing, nil); err == nil {
			_ = conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
			if _, _, err := wire.ReadFrame(conn); err == nil {
				t.Fatal("closed node answered a ping")
			}
		}
	}
}

func TestStartAfterCloseFails(t *testing.T) {
	n := New(nil, nil)
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Start("127.0.0.1:0"); err == nil {
		t.Fatal("start after close should fail")
	}
}

func TestStartBadAddress(t *testing.T) {
	n := New(nil, nil)
	defer n.Close()
	if _, err := n.Start("256.256.256.256:99999"); err == nil {
		t.Fatal("bad address should fail")
	}
}

func TestVersionConflictOverWire(t *testing.T) {
	n, addr := startNode(t)
	conn := dial(t, addr)
	put := func(version uint64, as int) {
		t.Helper()
		e := testEntry()
		e.Version = version
		e.NAs[0].AS = as
		payload, err := wire.AppendEntry(nil, e)
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.WriteFrame(conn, wire.MsgInsert, payload); err != nil {
			t.Fatal(err)
		}
		if typ, _, err := wire.ReadFrame(conn); err != nil || typ != wire.MsgInsertAck {
			t.Fatalf("put reply = (%v, %v)", typ, err)
		}
	}
	put(5, 1)
	put(4, 2) // stale: acked but ignored
	e, ok := n.Store().Get(testEntry().GUID)
	if !ok || e.Version != 5 || e.NAs[0].AS != 1 {
		t.Errorf("stale write applied: %+v", e)
	}
}
