// Background anti-entropy sweeps between live nodes (DESIGN.md §12).
//
// A node configured with gossip peers periodically walks its store in
// shard order and sends each peer bounded range-complete digest pages
// over a dedicated v2 connection (negotiated with wire.FeatRepair). The
// peer answers each page with a MsgRepairDiff: its fresher copies (the
// sweeper pulls them) and the GUIDs the sweeper's side holds fresher
// (the sweeper pushes them back as ordinary MsgBatchInsert frames, made
// idempotent by the store's §III-D2 freshest-wins Put). Divergence left
// behind by a partition, a lost ack or a restart therefore decays at
// the gossip rate without any foreground traffic — and because repair
// frames ride the same admission control as client requests, an
// overloaded peer sheds them first; the sweeper backs off and retries a
// full interval later.
package server

import (
	"fmt"
	"net"
	"time"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/store"
	"dmap/internal/wire"
)

// GossipOptions configures the anti-entropy sweeper. The zero value
// disables gossip (no peers).
type GossipOptions struct {
	// Peers lists the replica addresses to reconcile with, swept
	// round-robin — one peer per interval tick.
	Peers []string
	// Interval is the pause between sweeps (default 1s).
	Interval time.Duration
	// Batch bounds the digests per page (default and maximum
	// wire.MaxRepairDigests).
	Batch int
	// Rate caps repaired entries (pulled + pushed) per second across a
	// sweep; the sweeper sleeps to amortize bursts. 0 = unlimited.
	Rate int
}

// gossipDialTimeout bounds the dial + hello handshake; gossipExchange
// bounds each digest or push round trip.
const (
	gossipDialTimeout  = 3 * time.Second
	gossipExchangeWait = 5 * time.Second
)

// gossipLoop runs until Close, sweeping one peer per tick. Draining
// pauses outbound sweeps: a node about to hand off its share must not
// acquire state, and its fresher copies still flow out through the
// digests other sweepers send it.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	interval := n.gossipOpts.Interval
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	next := 0
	for {
		select {
		case <-n.gossipStop:
			return
		case <-ticker.C:
		}
		if n.draining.Load() {
			continue
		}
		addr := n.gossipOpts.Peers[next%len(n.gossipOpts.Peers)]
		next++
		if err := n.gossipSweep(addr); err != nil {
			n.logger.Debug("gossip sweep failed", "peer", addr, "err", err)
		}
	}
}

// errPeerShed marks a sweep aborted because the peer shed a repair
// frame under overload; the sweeper backs off until the next tick.
var errPeerShed = fmt.Errorf("server: peer shed repair frame")

// gossipSweep reconciles the whole store against one peer: dial,
// negotiate FeatRepair, then page every shard's digests through the
// repair exchange. Any error aborts the sweep — the next tick retries
// from scratch, and freshest-wins makes re-covered ground free.
func (n *Node) gossipSweep(addr string) error {
	n.repairSweeps.Add(1)
	gc, err := dialGossip(addr)
	if err != nil {
		n.repairPeerErrs.Add(1)
		return err
	}
	defer gc.conn.Close()

	batch := n.gossipOpts.Batch
	if batch <= 0 || batch > wire.MaxRepairDigests {
		batch = wire.MaxRepairDigests
	}
	page := make([]store.Digest, 0, batch)
	for shard := 0; shard < n.store.ShardCount(); shard++ {
		shardAfter, shardThrough := n.store.ShardRange(shard)
		cursor := shardAfter
		for guid.Compare(cursor, shardThrough) < 0 {
			select {
			case <-n.gossipStop:
				return nil
			default:
			}
			if n.draining.Load() {
				return nil
			}
			var more bool
			page, more = n.store.ShardDigests(shard, cursor, batch, page[:0])
			// The page is range-complete over (cursor, pageThrough]: up
			// to the last fingerprint when the cursor has further to go,
			// the shard boundary on the final page.
			pageThrough := shardThrough
			if more && len(page) > 0 {
				pageThrough = page[len(page)-1].GUID
			}
			covered, newer, want, err := gc.exchangeDigest(cursor, pageThrough, page)
			if err != nil {
				if err == errPeerShed {
					n.repairBackoffs.Add(1)
				} else {
					n.repairPeerErrs.Add(1)
				}
				return err
			}
			n.repairDigestsSent.Add(1)
			pulled, err := core.ApplyEntries(n.store, newer)
			n.repairPulled.Add(int64(pulled))
			if err != nil {
				n.repairPeerErrs.Add(1)
				return fmt.Errorf("server: applying repair pull: %w", err)
			}
			pushed, err := gc.pushWanted(n.store, want)
			n.repairPushed.Add(int64(pushed))
			if err != nil {
				if err == errPeerShed {
					n.repairBackoffs.Add(1)
				} else {
					n.repairPeerErrs.Add(1)
				}
				return err
			}
			n.gossipThrottle(len(newer) + pushed)
			if guid.Compare(covered, cursor) <= 0 {
				n.repairPeerErrs.Add(1)
				return fmt.Errorf("server: peer repair cursor did not advance past %s", cursor.Short())
			}
			cursor = covered // covered == pageThrough unless the peer truncated
		}
	}
	return nil
}

// gossipThrottle sleeps off the transfer budget: units repaired entries
// at Rate entries/second. Unlimited or idle exchanges cost nothing.
func (n *Node) gossipThrottle(units int) {
	rate := n.gossipOpts.Rate
	if rate <= 0 || units <= 0 {
		return
	}
	d := time.Duration(units) * time.Second / time.Duration(rate)
	select {
	case <-n.gossipStop:
	case <-time.After(d):
	}
}

// gossipConn is the sweeper's side of a repair connection: v2 framing,
// FeatRepair negotiated, strictly one exchange in flight.
type gossipConn struct {
	conn net.Conn
	next uint64
	buf  []byte
}

// dialGossip connects to a peer and negotiates v2 + FeatRepair. A v1
// peer, or a v2 peer that does not grant the repair extension, is an
// error: sweeping it would only burn unknown-frame rejections.
func dialGossip(addr string) (*gossipConn, error) {
	conn, err := net.DialTimeout("tcp", addr, gossipDialTimeout)
	if err != nil {
		return nil, fmt.Errorf("server: gossip dial %s: %w", addr, err)
	}
	_ = conn.SetDeadline(time.Now().Add(gossipDialTimeout))
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.AppendHelloFeat(nil, wire.Version2, wire.FeatRepair)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: gossip hello: %w", err)
	}
	t, body, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: gossip hello read: %w", err)
	}
	if t != wire.MsgHelloAck {
		conn.Close()
		return nil, fmt.Errorf("server: peer %s answered hello with %v (v1 peer?)", addr, t)
	}
	v, feat, err := wire.DecodeHelloAck(body)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("server: gossip hello ack: %w", err)
	}
	if v < wire.Version2 || feat&wire.FeatRepair == 0 {
		conn.Close()
		return nil, fmt.Errorf("server: peer %s did not grant repair (v%d feat %#x)", addr, v, feat)
	}
	_ = conn.SetDeadline(time.Time{})
	return &gossipConn{conn: conn}, nil
}

// roundTrip writes one identified frame and reads its reply. The
// sweeper never pipelines, so the next frame on the connection is the
// answer; a mismatched ID means the stream is broken.
func (gc *gossipConn) roundTrip(t wire.MsgType, payload []byte) (wire.MsgType, []byte, error) {
	gc.next++
	out, err := wire.AppendFrameID(gc.buf[:0], t, gc.next, payload)
	if err != nil {
		return 0, nil, err
	}
	gc.buf = out
	_ = gc.conn.SetDeadline(time.Now().Add(gossipExchangeWait))
	if _, err := gc.conn.Write(out); err != nil {
		return 0, nil, fmt.Errorf("server: gossip write: %w", err)
	}
	rt, id, body, err := wire.ReadFrameID(gc.conn)
	if err != nil {
		return 0, nil, fmt.Errorf("server: gossip read: %w", err)
	}
	if id != gc.next {
		return 0, nil, fmt.Errorf("server: gossip reply id %d, want %d", id, gc.next)
	}
	if rt == wire.MsgError {
		kind, reason, _ := wire.DecodeErrorKind(body)
		if kind == wire.ErrKindShed {
			return 0, nil, errPeerShed
		}
		return 0, nil, fmt.Errorf("server: peer refused repair frame: %s", reason)
	}
	return rt, body, nil
}

// exchangeDigest sends one digest page and decodes the peer's diff.
func (gc *gossipConn) exchangeDigest(after, through guid.GUID, page []store.Digest) (covered guid.GUID, newer []store.Entry, want []guid.GUID, err error) {
	body, err := wire.AppendRepairDigest(nil, after, through, page)
	if err != nil {
		return covered, nil, nil, err
	}
	rt, resp, err := gc.roundTrip(wire.MsgRepairDigest, body)
	if err != nil {
		return covered, nil, nil, err
	}
	if rt != wire.MsgRepairDiff {
		return covered, nil, nil, fmt.Errorf("server: repair digest answered with %v", rt)
	}
	return wire.DecodeRepairDiff(resp)
}

// pushWanted sends the peer the entries it asked for, batched into
// MsgBatchInsert frames, and returns how many the peer acknowledged
// applying. GUIDs deleted since the digest was cut are skipped.
func (gc *gossipConn) pushWanted(st *store.Store, want []guid.GUID) (int, error) {
	if len(want) == 0 {
		return 0, nil
	}
	entries := make([]store.Entry, 0, len(want))
	for _, g := range want {
		if e, ok := st.Get(g); ok {
			entries = append(entries, e)
		}
	}
	pushed := 0
	for len(entries) > 0 {
		b := entries
		if len(b) > wire.MaxBatch {
			b = b[:wire.MaxBatch]
		}
		entries = entries[len(b):]
		body, err := wire.AppendBatchInsert(nil, b)
		if err != nil {
			return pushed, err
		}
		rt, resp, err := gc.roundTrip(wire.MsgBatchInsert, body)
		if err != nil {
			return pushed, err
		}
		if rt != wire.MsgBatchInsertAck {
			return pushed, fmt.Errorf("server: repair push answered with %v", rt)
		}
		acked, err := wire.DecodeBatchInsertAck(resp)
		if err != nil {
			return pushed, err
		}
		for _, ok := range acked {
			if ok {
				pushed++
			}
		}
	}
	return pushed, nil
}

// handleRepairDigest answers one MsgRepairDigest on a v2 worker. The
// caller has already verified FeatRepair was negotiated. A draining
// node answers with wantMissing=false: it keeps exporting its fresher
// copies but asks for nothing — the handoff posture.
func (n *Node) handleRepairDigest(w *wire.Writer, id uint64, payload []byte) {
	after, through, page, err := wire.DecodeRepairDigest(payload)
	if err != nil {
		n.badReqs.Add(1)
		_ = w.WriteFrameID(wire.MsgError, id, wire.AppendErrorKind(nil, wire.ErrKindBadRequest, "malformed repair digest"))
		return
	}
	n.repairDigestsRecv.Add(1)
	newer, want, covered := core.DiffRange(n.store, after, through, page, !n.draining.Load(), wire.MaxBatch)
	body, err := wire.AppendRepairDiff(nil, covered, newer, want)
	if err != nil {
		n.countErr()
		_ = w.WriteFrameID(wire.MsgError, id, wire.AppendErrorKind(nil, wire.ErrKindInternal, "repair diff encode failed"))
		return
	}
	_ = w.WriteFrameID(wire.MsgRepairDiff, id, body)
}
