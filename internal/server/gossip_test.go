package server

import (
	"fmt"
	"testing"
	"time"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/store"
	"dmap/internal/wire"
)

func gossipEntry(name string, version uint64) store.Entry {
	return store.Entry{
		GUID:    guid.New(name),
		NAs:     []store.NA{{AS: 4, Addr: netaddr.AddrFromOctets(10, 1, 0, 4)}},
		Version: version,
	}
}

func putAll(t *testing.T, st *store.Store, entries ...store.Entry) {
	t.Helper()
	for _, e := range entries {
		if _, err := st.Put(e); err != nil {
			t.Fatal(err)
		}
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGossipConvergesTwoNodes proves one sweeper reconciles both
// directions: the sweeper pulls the peer's fresher and missing entries
// and pushes back its own fresher ones — without the peer ever
// sweeping.
func TestGossipConvergesTwoNodes(t *testing.T) {
	peer := New(nil, nil)
	peerAddr, err := peer.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close() })

	sweeper := NewWithOptions(nil, Options{
		Gossip: GossipOptions{Peers: []string{peerAddr}, Interval: 10 * time.Millisecond},
	})
	// Divergence in every direction before the sweeper starts:
	putAll(t, sweeper.Store(),
		gossipEntry("shared-sweeper-fresh", 5), // push: sweeper is ahead
		gossipEntry("shared-peer-fresh", 1),    // pull: peer is ahead
		gossipEntry("only-sweeper", 2),         // push: peer never saw it
	)
	putAll(t, peer.Store(),
		gossipEntry("shared-sweeper-fresh", 3),
		gossipEntry("shared-peer-fresh", 7),
		gossipEntry("only-peer", 4), // pull: sweeper never saw it
	)
	if _, err := sweeper.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sweeper.Close() })

	version := func(st *store.Store, name string) uint64 {
		v, _ := st.Version(guid.New(name))
		return v
	}
	waitFor(t, "replica convergence", func() bool {
		return version(sweeper.Store(), "shared-peer-fresh") == 7 &&
			version(sweeper.Store(), "only-peer") == 4 &&
			version(peer.Store(), "shared-sweeper-fresh") == 5 &&
			version(peer.Store(), "only-sweeper") == 2
	})

	if sweeper.repairSweeps.Value() == 0 || sweeper.repairDigestsSent.Value() == 0 {
		t.Fatalf("sweeper counters: sweeps=%d digests=%d",
			sweeper.repairSweeps.Value(), sweeper.repairDigestsSent.Value())
	}
	if sweeper.repairPulled.Value() < 2 {
		t.Fatalf("entries_pulled = %d, want >= 2", sweeper.repairPulled.Value())
	}
	if sweeper.repairPushed.Value() < 2 {
		t.Fatalf("entries_pushed = %d, want >= 2", sweeper.repairPushed.Value())
	}
	if peer.repairDigestsRecv.Value() == 0 {
		t.Fatal("peer answered no digest pages")
	}
}

// TestGossipRepairsEmptyRestartedNode is the restart-recovery shape: a
// node that lost everything sweeps a populated peer; empty digest pages
// elicit pushes of the full keyspace, paged via the covered cursor.
func TestGossipRepairsEmptyRestartedNode(t *testing.T) {
	peer := New(nil, nil)
	const n = 300
	for i := 0; i < n; i++ {
		putAll(t, peer.Store(), gossipEntry(fmt.Sprintf("bulk-%d", i), uint64(1+i%3)))
	}
	peerAddr, err := peer.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close() })

	restarted := NewWithOptions(nil, Options{
		Gossip: GossipOptions{
			Peers:    []string{peerAddr},
			Interval: 5 * time.Millisecond,
			Batch:    32, // force multi-page sweeps
		},
	})
	if _, err := restarted.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { restarted.Close() })

	waitFor(t, "restarted node refill", func() bool {
		return restarted.Store().Len() == n
	})
	if restarted.repairPulled.Value() != int64(n) {
		t.Fatalf("entries_pulled = %d, want %d", restarted.repairPulled.Value(), n)
	}
}

// TestRepairFrameRequiresNegotiation pins the feature gate: a repair
// digest on a connection that never negotiated FeatRepair is an unknown
// frame, not a serviced one.
func TestRepairFrameRequiresNegotiation(t *testing.T) {
	n, addr := startNode(t)
	putAll(t, n.Store(), gossipEntry("gated", 2))

	digest, err := wire.AppendRepairDigest(nil, guid.GUID{}, guid.Max(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// v2 connection without FeatRepair: per-frame MsgError, connection
	// stays alive.
	conn := dial(t, addr)
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.AppendHelloFeat(nil, wire.Version2, 0)); err != nil {
		t.Fatal(err)
	}
	typ, body, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgHelloAck {
		t.Fatalf("hello reply = (%v, %v)", typ, err)
	}
	if _, feat, _ := wire.DecodeHelloAck(body); feat&wire.FeatRepair != 0 {
		t.Fatal("server granted FeatRepair without it being requested")
	}
	if err := wire.WriteFrameID(conn, wire.MsgRepairDigest, 1, digest); err != nil {
		t.Fatal(err)
	}
	rt, _, rbody, err := wire.ReadFrameID(conn)
	if err != nil {
		t.Fatal(err)
	}
	if rt != wire.MsgError {
		t.Fatalf("un-negotiated repair digest answered with %v", rt)
	}
	if kind, _, _ := wire.DecodeErrorKind(rbody); kind != wire.ErrKindBadRequest {
		t.Fatalf("error kind = %v, want bad request", kind)
	}

	// A negotiated connection gets a real diff for the same bytes.
	conn2 := dial(t, addr)
	if err := wire.WriteFrame(conn2, wire.MsgHello, wire.AppendHelloFeat(nil, wire.Version2, wire.FeatRepair)); err != nil {
		t.Fatal(err)
	}
	typ, body, err = wire.ReadFrame(conn2)
	if err != nil || typ != wire.MsgHelloAck {
		t.Fatalf("hello reply = (%v, %v)", typ, err)
	}
	if _, feat, _ := wire.DecodeHelloAck(body); feat&wire.FeatRepair == 0 {
		t.Fatal("server refused FeatRepair")
	}
	if err := wire.WriteFrameID(conn2, wire.MsgRepairDigest, 1, digest); err != nil {
		t.Fatal(err)
	}
	rt, _, rbody, err = wire.ReadFrameID(conn2)
	if err != nil {
		t.Fatal(err)
	}
	if rt != wire.MsgRepairDiff {
		t.Fatalf("negotiated repair digest answered with %v", rt)
	}
	covered, newer, _, err := wire.DecodeRepairDiff(rbody)
	if err != nil {
		t.Fatal(err)
	}
	if covered != guid.Max() || len(newer) != 1 {
		t.Fatalf("diff = covered %s, %d newer; want full cover, 1 newer", covered, len(newer))
	}
}

// TestDrainingPeerStopsWanting verifies the handoff posture: a draining
// node still answers digests with its fresher copies but asks for
// nothing, and a draining sweeper stops sweeping.
func TestDrainingPeerStopsWanting(t *testing.T) {
	n, addr := startNode(t)
	putAll(t, n.Store(), gossipEntry("theirs", 9))
	n.Drain()

	gc, err := dialGossip(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer gc.conn.Close()

	// The peer lacks "ours" (v3) and holds "theirs" (v9, we claim v1):
	// an eager peer would want "ours" and the fresher "theirs"; a
	// draining one must want neither, yet still export "theirs".
	page := []store.Digest{
		{GUID: guid.New("ours"), Version: 3},
		{GUID: guid.New("theirs"), Version: 1},
	}
	if guid.Compare(page[0].GUID, page[1].GUID) > 0 {
		page[0], page[1] = page[1], page[0]
	}
	covered, newer, want, err := gc.exchangeDigest(guid.GUID{}, guid.Max(), page)
	if err != nil {
		t.Fatal(err)
	}
	if covered != guid.Max() {
		t.Fatalf("covered = %s", covered)
	}
	if len(want) != 0 {
		t.Fatalf("draining peer wants %d entries, should acquire nothing", len(want))
	}
	if len(newer) != 1 || newer[0].Version != 9 {
		t.Fatalf("draining peer stopped exporting: newer = %+v", newer)
	}
}
