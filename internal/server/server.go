// Package server runs a DMap mapping node over TCP: the process an AS
// border gateway would co-locate with its router to host its share of the
// global GUID→NA table. It substitutes for the paper's GENI prototype
// (§VII) and makes the library deployable beyond simulation.
//
// The node is deliberately dumb, exactly as DMap intends: it stores and
// serves whatever mappings hash to it. All placement intelligence (the K
// hash functions, Algorithm 1, replica selection) lives in the client,
// because any participant can derive placements locally from the shared
// prefix table.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dmap/internal/metrics"
	"dmap/internal/store"
	"dmap/internal/wire"
)

// Node is a TCP mapping server. Create with New, start with Serve or
// Start, stop with Close.
type Node struct {
	store  *store.Store
	logger *log.Logger

	// mu guards listener lifecycle state only: listener, conns and
	// closed. Request handling never takes it — the store has its own
	// locking and the counters are atomics — so a slow accept or Close
	// cannot stall in-flight operations.
	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// draining rejects writes with a MsgError reply instead of serving
	// them — the §III-D1 migration posture: a node about to hand off its
	// share keeps answering lookups but refuses new state.
	draining atomic.Bool

	// All operational counters live on the node's metrics registry —
	// the same numbers Stats() reports are what /debug/metrics serves.
	// Handles are resolved once in New; the request path never touches
	// the registry's lock.
	reg     *metrics.Registry
	inserts *metrics.Counter
	lookups *metrics.Counter
	hits    *metrics.Counter
	deletes *metrics.Counter
	errors  *metrics.Counter
	rejects *metrics.Counter
	badReqs *metrics.Counter
	// Per-op service-time histograms (µs): decode + store + encode,
	// excluding the response write.
	hInsert *metrics.Histogram
	hLookup *metrics.Histogram
	hDelete *metrics.Histogram
}

// Stats counts served operations.
type Stats struct {
	Inserts int64
	Lookups int64
	Hits    int64
	Deletes int64
	// Errors counts internal failures (store errors, unknown frames).
	Errors int64
	// Rejects counts writes refused while draining.
	Rejects int64
	// BadRequests counts malformed frames answered with MsgError.
	BadRequests int64
}

// New creates a node around st (a fresh store if nil). logger may be nil
// to discard logs.
func New(st *store.Store, logger *log.Logger) *Node {
	if st == nil {
		st = store.New()
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	reg := metrics.NewRegistry()
	n := &Node{
		store:   st,
		logger:  logger,
		conns:   make(map[net.Conn]struct{}),
		reg:     reg,
		inserts: reg.Counter("server.inserts"),
		lookups: reg.Counter("server.lookups"),
		hits:    reg.Counter("server.hits"),
		deletes: reg.Counter("server.deletes"),
		errors:  reg.Counter("server.errors"),
		rejects: reg.Counter("server.rejects"),
		badReqs: reg.Counter("server.bad_requests"),
		hInsert: reg.Histogram("server.op.insert_us"),
		hLookup: reg.Histogram("server.op.lookup_us"),
		hDelete: reg.Histogram("server.op.delete_us"),
	}
	st.Instrument(reg, "store")
	reg.GaugeFunc("server.conns", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.conns))
	})
	reg.GaugeFunc("server.draining", func() float64 {
		if n.draining.Load() {
			return 1
		}
		return 0
	})
	return n
}

// Store returns the node's mapping store.
func (n *Node) Store() *store.Store { return n.store }

// Metrics returns the node's registry: operation counters, per-op
// latency histograms and store gauges. Serve it with metrics.Handler
// (cmd/dmapnode -debug-addr does).
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// Stats returns a snapshot of operation counters. Each counter is read
// atomically; the snapshot as a whole is not a single instant, which is
// fine for monitoring (e.g. Hits may momentarily exceed what Lookups
// implies by at most the number of in-flight requests). The counters
// are the registry's own — Stats and /debug/metrics cannot disagree.
func (n *Node) Stats() Stats {
	return Stats{
		Inserts:     n.inserts.Value(),
		Lookups:     n.lookups.Value(),
		Hits:        n.hits.Value(),
		Deletes:     n.deletes.Value(),
		Errors:      n.errors.Value(),
		Rejects:     n.rejects.Value(),
		BadRequests: n.badReqs.Value(),
	}
}

// Drain switches the node into read-only mode: lookups and pings are
// served, inserts and deletes are answered with a MsgError frame so
// clients fail over to another replica immediately instead of hanging
// into their timeout. Use before withdrawing the node's share.
func (n *Node) Drain() { n.draining.Store(true) }

// Resume ends draining.
func (n *Node) Resume() { n.draining.Store(false) }

// Draining reports whether the node is in read-only mode.
func (n *Node) Draining() bool { return n.draining.Load() }

// Start listens on addr ("host:port", ":0" for ephemeral) and serves in
// the background. It returns the bound address.
func (n *Node) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", addr, err)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		ln.Close()
		return "", errors.New("server: node already closed")
	}
	n.listener = ln
	n.mu.Unlock()

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.acceptLoop(ln)
	}()
	return ln.Addr().String(), nil
}

func (n *Node) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.mu.Unlock()

		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
			n.mu.Lock()
			delete(n.conns, conn)
			n.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every live connection and waits for the
// handlers to drain.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	ln := n.listener
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()

	// Close outside the lock: handler goroutines removing themselves
	// from conns never wait behind a slow Close.
	for _, c := range conns {
		c.Close()
	}
	var err error
	if ln != nil {
		err = ln.Close()
	}
	n.wg.Wait()
	return err
}

func (n *Node) countErr() {
	n.errors.Add(1)
}

// replyErrAndClose best-effort answers a broken request with a MsgError
// frame so the peer learns why instead of watching its timeout expire;
// the caller closes the connection (the stream may be desynchronized).
func (n *Node) replyErrAndClose(conn net.Conn, reason string) {
	_ = wire.WriteFrame(conn, wire.MsgError, wire.AppendError(nil, reason))
}

// serveConn processes frames until the peer disconnects. The protocol is
// strictly request/response per connection; clients pipeline by opening
// several connections.
func (n *Node) serveConn(conn net.Conn) {
	defer conn.Close()
	var out []byte
	for {
		t, payload, err := wire.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				n.logger.Printf("read %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		start := time.Now()
		out = out[:0]
		var respType wire.MsgType
		switch t {
		case wire.MsgInsert:
			if n.draining.Load() {
				n.rejects.Add(1)
				respType, out = wire.MsgError, wire.AppendError(out, "draining: writes refused")
				break
			}
			e, _, err := wire.DecodeEntry(payload)
			if err != nil {
				n.badReqs.Add(1)
				n.logger.Printf("bad insert from %s: %v", conn.RemoteAddr(), err)
				n.replyErrAndClose(conn, "malformed insert")
				return
			}
			if _, err := n.store.Put(e); err != nil {
				// A store-level refusal (validation) is the peer's fault;
				// reject the request without tearing down the connection.
				n.countErr()
				n.logger.Printf("put: %v", err)
				respType, out = wire.MsgError, wire.AppendError(out, "store rejected entry")
				break
			}
			n.inserts.Add(1)
			n.hInsert.ObserveSince(start)
			respType = wire.MsgInsertAck

		case wire.MsgLookup:
			g, _, err := wire.DecodeGUID(payload)
			if err != nil {
				n.badReqs.Add(1)
				n.replyErrAndClose(conn, "malformed lookup")
				return
			}
			e, ok := n.store.Get(g)
			n.lookups.Add(1)
			if ok {
				n.hits.Add(1)
			}
			out, err = wire.AppendLookupResp(out, wire.LookupResp{Found: ok, Entry: e})
			if err != nil {
				n.countErr()
				return
			}
			n.hLookup.ObserveSince(start)
			respType = wire.MsgLookupResp

		case wire.MsgDelete:
			if n.draining.Load() {
				n.rejects.Add(1)
				respType, out = wire.MsgError, wire.AppendError(out, "draining: writes refused")
				break
			}
			g, _, err := wire.DecodeGUID(payload)
			if err != nil {
				n.badReqs.Add(1)
				n.replyErrAndClose(conn, "malformed delete")
				return
			}
			existed := n.store.Delete(g)
			n.deletes.Add(1)
			flag := byte(0)
			if existed {
				flag = 1
			}
			out = append(out, flag)
			n.hDelete.ObserveSince(start)
			respType = wire.MsgDeleteAck

		case wire.MsgPing:
			respType = wire.MsgPong

		default:
			n.countErr()
			n.logger.Printf("unknown frame %v from %s", t, conn.RemoteAddr())
			n.replyErrAndClose(conn, "unknown frame type")
			return
		}
		if err := wire.WriteFrame(conn, respType, out); err != nil {
			n.logger.Printf("write %s: %v", conn.RemoteAddr(), err)
			return
		}
	}
}
