// Package server runs a DMap mapping node over TCP: the process an AS
// border gateway would co-locate with its router to host its share of the
// global GUID→NA table. It substitutes for the paper's GENI prototype
// (§VII) and makes the library deployable beyond simulation.
//
// The node is deliberately dumb, exactly as DMap intends: it stores and
// serves whatever mappings hash to it. All placement intelligence (the K
// hash functions, Algorithm 1, replica selection) lives in the client,
// because any participant can derive placements locally from the shared
// prefix table.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dmap/internal/metrics"
	"dmap/internal/store"
	"dmap/internal/trace"
	"dmap/internal/wire"
)

// Node is a TCP mapping server. Create with New, start with Serve or
// Start, stop with Close.
type Node struct {
	store *store.Store
	// ownsStore marks a store this node opened itself (Open): Close
	// flushes and closes it once the last handler has drained.
	ownsStore bool
	logger    *trace.Logger
	// tracer, when set, joins sampled request traces arriving over the
	// v2 trace extension and feeds the slow-op log. Nil = tracing off;
	// the frame loop then never touches trace state.
	tracer *trace.Tracer
	// hot profiles the per-node request stream (§IV-C): which GUIDs
	// dominate this node's lookup and insert load. Nil = off.
	hot *trace.HotKeys

	// mu guards listener lifecycle state only: listener, conns and
	// closed. Request handling never takes it — the store has its own
	// locking and the counters are atomics — so a slow accept or Close
	// cannot stall in-flight operations.
	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// draining rejects writes with a MsgError reply instead of serving
	// them — the §III-D1 migration posture: a node about to hand off its
	// share keeps answering lookups but refuses new state.
	draining atomic.Bool

	// admit is the global in-flight admission limiter; every request
	// frame claims a slot here (and in its connection's own limiter)
	// before dispatch, or is answered with an ErrKindShed MsgError.
	// maxConnInflight seeds each connection's limiter.
	admit           limiter
	maxConnInflight int64

	// Anti-entropy sweeper state (gossip.go). gossipStop is closed by
	// Close; gossipOn marks the loop as launched so a second Start
	// cannot double-run it.
	gossipOpts GossipOptions
	gossipStop chan struct{}
	gossipOn   bool

	// All operational counters live on the node's metrics registry —
	// the same numbers Stats() reports are what /debug/metrics serves.
	// Handles are resolved once in New; the request path never touches
	// the registry's lock.
	reg     *metrics.Registry
	inserts *metrics.Counter
	lookups *metrics.Counter
	hits    *metrics.Counter
	deletes *metrics.Counter
	errors  *metrics.Counter
	rejects *metrics.Counter
	badReqs *metrics.Counter
	// Per-op service-time histograms (µs): decode + store + encode,
	// excluding the response write.
	hInsert *metrics.Histogram
	hLookup *metrics.Histogram
	hDelete *metrics.Histogram
	// Admission outcomes: frames refused at the per-conn and global
	// in-flight limits. The matching inflight figure is the GaugeFunc
	// server.inflight over the global limiter.
	shedsConn   *metrics.Counter
	shedsGlobal *metrics.Counter
	// v2 pipelined-path instrumentation: entries/GUIDs per batch frame
	// and per-frame service time for the batch ops.
	hBatchSize *metrics.Histogram
	hBatchIns  *metrics.Histogram
	hBatchLkp  *metrics.Histogram
	v2Conns    *metrics.Counter
	v2Frames   *metrics.Counter
	// Anti-entropy repair activity, both roles: sweeps/digests_sent/
	// pulled/pushed/backoffs/peer_errors count this node sweeping its
	// peers; digests_recv counts pages answered for peers sweeping it.
	repairSweeps      *metrics.Counter
	repairDigestsSent *metrics.Counter
	repairDigestsRecv *metrics.Counter
	repairPulled      *metrics.Counter
	repairPushed      *metrics.Counter
	repairBackoffs    *metrics.Counter
	repairPeerErrs    *metrics.Counter
}

// Stats counts served operations.
type Stats struct {
	Inserts int64
	Lookups int64
	Hits    int64
	Deletes int64
	// Errors counts internal failures (store errors, unknown frames).
	Errors int64
	// Rejects counts writes refused while draining.
	Rejects int64
	// BadRequests counts malformed frames answered with MsgError.
	BadRequests int64
	// Sheds counts frames refused by admission control (per-conn plus
	// global in-flight limits), answered with an ErrKindShed MsgError.
	Sheds int64
}

// Options configures optional node subsystems. The zero value is a
// quiet node: no logging, no tracing, no hot-key profiling.
type Options struct {
	// Logger receives structured key=value records; nil discards.
	Logger *trace.Logger
	// Tracer joins request traces and captures slow ops; nil = off.
	Tracer *trace.Tracer
	// HotKeys tracks the hottest GUIDs by lookup and insert load;
	// nil = off.
	HotKeys *trace.HotKeys

	// DataDir, when non-empty, makes Open build a durable store there
	// (WAL + snapshots) instead of a memory-only one: acknowledged
	// writes survive a crash and are recovered on the next Open.
	// NewWithOptions ignores it — it takes the store it is given.
	DataDir string
	// Fsync selects the durable store's flush policy (store.FsyncOS,
	// FsyncAlways, FsyncInterval).
	Fsync store.FsyncMode
	// Shards overrides the store's shard count (0 = store default).
	Shards int
	// SnapshotBytes overrides the per-shard WAL growth that triggers a
	// snapshot (0 = store default, negative disables).
	SnapshotBytes int64

	// MaxInflight caps requests in flight across the whole node;
	// beyond it new frames are answered with an ErrKindShed MsgError
	// instead of queueing. 0 = unbounded.
	MaxInflight int
	// MaxConnInflight caps requests in flight per connection, bounding
	// how much of the node one peer can occupy. 0 = unbounded.
	MaxConnInflight int

	// Gossip configures the background anti-entropy sweeper
	// (gossip.go); no peers disables it.
	Gossip GossipOptions
}

// New creates a node around st (a fresh store if nil). logger may be nil
// to discard logs.
func New(st *store.Store, logger *trace.Logger) *Node {
	return NewWithOptions(st, Options{Logger: logger})
}

// Open creates a node backed by a durable store in opts.DataDir: it
// recovers whatever a previous process persisted (snapshot + WAL tail,
// tolerating a torn final record), then serves from it. The node owns
// the store — Close flushes and closes it. With an empty DataDir it is
// NewWithOptions over a fresh memory-only store.
func Open(opts Options) (*Node, error) {
	if opts.DataDir == "" {
		return NewWithOptions(nil, opts), nil
	}
	st, err := store.Open(store.Options{
		Dir:           opts.DataDir,
		Shards:        opts.Shards,
		Fsync:         opts.Fsync,
		SnapshotBytes: opts.SnapshotBytes,
	})
	if err != nil {
		return nil, err
	}
	n := NewWithOptions(st, opts)
	n.ownsStore = true
	return n, nil
}

// NewWithOptions creates a node with the full observability surface.
func NewWithOptions(st *store.Store, opts Options) *Node {
	if st == nil {
		st = store.New()
	}
	reg := metrics.NewRegistry()
	n := &Node{
		store:   st,
		logger:  opts.Logger,
		tracer:  opts.Tracer,
		hot:     opts.HotKeys,
		conns:   make(map[net.Conn]struct{}),
		reg:     reg,
		inserts: reg.Counter("server.inserts"),
		lookups: reg.Counter("server.lookups"),
		hits:    reg.Counter("server.hits"),
		deletes: reg.Counter("server.deletes"),
		errors:  reg.Counter("server.errors"),
		rejects: reg.Counter("server.rejects"),
		badReqs: reg.Counter("server.bad_requests"),
		hInsert: reg.Histogram("server.op.insert_us"),
		hLookup: reg.Histogram("server.op.lookup_us"),
		hDelete: reg.Histogram("server.op.delete_us"),

		shedsConn:   reg.Counter("server.sheds_conn"),
		shedsGlobal: reg.Counter("server.sheds_global"),
		hBatchSize:  reg.Histogram("server.batch_size"),
		hBatchIns:   reg.Histogram("server.op.batch_insert_us"),
		hBatchLkp:   reg.Histogram("server.op.batch_lookup_us"),
		v2Conns:     reg.Counter("server.v2_conns"),
		v2Frames:    reg.Counter("server.v2_frames"),

		repairSweeps:      reg.Counter("server.repair.sweeps"),
		repairDigestsSent: reg.Counter("server.repair.digests_sent"),
		repairDigestsRecv: reg.Counter("server.repair.digests_recv"),
		repairPulled:      reg.Counter("server.repair.entries_pulled"),
		repairPushed:      reg.Counter("server.repair.entries_pushed"),
		repairBackoffs:    reg.Counter("server.repair.backoffs"),
		repairPeerErrs:    reg.Counter("server.repair.peer_errors"),

		gossipOpts: opts.Gossip,
		gossipStop: make(chan struct{}),
	}
	n.admit.max = int64(opts.MaxInflight)
	n.maxConnInflight = int64(opts.MaxConnInflight)
	st.Instrument(reg, "store")
	// Requests currently being handled across every connection, v1 and
	// v2 alike: the global admission limiter's live count.
	reg.GaugeFunc("server.inflight", func() float64 {
		return float64(n.admit.inflight())
	})
	reg.GaugeFunc("server.conns", func() float64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return float64(len(n.conns))
	})
	reg.GaugeFunc("server.draining", func() float64 {
		if n.draining.Load() {
			return 1
		}
		return 0
	})
	if n.hot != nil {
		// Hot-key load exposure: the totals and the hottest single key's
		// (over)count per class, enough for dashboards to spot a skewed
		// stream without scraping /debug/hotkeys.
		reg.GaugeFunc("server.hot.lookup_total", func() float64 {
			l, _ := n.hot.Totals()
			return float64(l)
		})
		reg.GaugeFunc("server.hot.insert_total", func() float64 {
			_, i := n.hot.Totals()
			return float64(i)
		})
		reg.GaugeFunc("server.hot.lookup_max", func() float64 {
			if top := n.hot.TopLookups(1); len(top) > 0 {
				return float64(top[0].Count)
			}
			return 0
		})
		reg.GaugeFunc("server.hot.insert_max", func() float64 {
			if top := n.hot.TopInserts(1); len(top) > 0 {
				return float64(top[0].Count)
			}
			return 0
		})
	}
	return n
}

// Tracer returns the node's tracer (nil when tracing is off).
func (n *Node) Tracer() *trace.Tracer { return n.tracer }

// HotKeys returns the node's hot-GUID trackers (nil when off).
func (n *Node) HotKeys() *trace.HotKeys { return n.hot }

// Store returns the node's mapping store.
func (n *Node) Store() *store.Store { return n.store }

// Metrics returns the node's registry: operation counters, per-op
// latency histograms and store gauges. Serve it with metrics.Handler
// (cmd/dmapnode -debug-addr does).
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// Stats returns a snapshot of operation counters. Each counter is read
// atomically; the snapshot as a whole is not a single instant, which is
// fine for monitoring (e.g. Hits may momentarily exceed what Lookups
// implies by at most the number of in-flight requests). The counters
// are the registry's own — Stats and /debug/metrics cannot disagree.
func (n *Node) Stats() Stats {
	return Stats{
		Inserts:     n.inserts.Value(),
		Lookups:     n.lookups.Value(),
		Hits:        n.hits.Value(),
		Deletes:     n.deletes.Value(),
		Errors:      n.errors.Value(),
		Rejects:     n.rejects.Value(),
		BadRequests: n.badReqs.Value(),
		Sheds:       n.shedsConn.Value() + n.shedsGlobal.Value(),
	}
}

// Drain switches the node into read-only mode: lookups and pings are
// served, inserts and deletes are answered with a MsgError frame so
// clients fail over to another replica immediately instead of hanging
// into their timeout. Use before withdrawing the node's share.
func (n *Node) Drain() {
	n.draining.Store(true)
	// A drained node is the §III-D1 handoff posture: make everything it
	// acknowledged durable now, whatever the fsync policy.
	if err := n.store.Sync(); err != nil && n.logger != nil {
		n.logger.Warn("drain sync failed", "err", err)
	}
}

// Resume ends draining.
func (n *Node) Resume() { n.draining.Store(false) }

// Draining reports whether the node is in read-only mode.
func (n *Node) Draining() bool { return n.draining.Load() }

// Start listens on addr ("host:port", ":0" for ephemeral) and serves in
// the background. It returns the bound address.
func (n *Node) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", addr, err)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		ln.Close()
		return "", errors.New("server: node already closed")
	}
	n.listener = ln
	n.mu.Unlock()

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.acceptLoop(ln)
	}()
	n.mu.Lock()
	if len(n.gossipOpts.Peers) > 0 && !n.gossipOn {
		n.gossipOn = true
		n.wg.Add(1)
		go n.gossipLoop()
	}
	n.mu.Unlock()
	return ln.Addr().String(), nil
}

func (n *Node) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.mu.Unlock()

		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.serveConn(conn)
			n.mu.Lock()
			delete(n.conns, conn)
			n.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every live connection and waits for the
// handlers to drain.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.gossipStop) // stops the sweeper; closed guards double-close
	ln := n.listener
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()

	// Close outside the lock: handler goroutines removing themselves
	// from conns never wait behind a slow Close.
	for _, c := range conns {
		c.Close()
	}
	var err error
	if ln != nil {
		err = ln.Close()
	}
	n.wg.Wait()
	if n.ownsStore {
		// Handlers have drained: flush and close the durable store so a
		// clean shutdown needs no WAL replay beyond the last snapshot.
		if serr := n.store.Close(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

func (n *Node) countErr() {
	n.errors.Add(1)
}

// replyErrAndClose best-effort answers a broken request with a MsgError
// frame so the peer learns why instead of watching its timeout expire;
// the caller closes the connection (the stream may be desynchronized).
func (n *Node) replyErrAndClose(conn net.Conn, kind wire.ErrKind, reason string) {
	_ = wire.WriteFrame(conn, wire.MsgError, wire.AppendErrorKind(nil, kind, reason))
}

// handle executes one decoded request and returns the response frame.
// It is shared by the sequential v1 loop and the concurrent v2 loop and
// is safe for concurrent use: the store has its own locking and every
// counter is atomic. sp, when non-nil, is the request's server-side
// span: handle attaches a store child span around the state access.
//
// dst is the caller's response scratch: every returned out slice is dst
// with the response appended (grown if it did not fit), so the caller
// owns out's storage and single-op responses never allocate. Callers
// pass dst with len 0; handle never reads its contents.
//
// fatal reports a malformed or unknown frame — v1 closes the connection
// after replying (its anonymous framing gives no way to resynchronize
// blame), while v2 replies under the offending request ID and keeps the
// connection (identified framing stays intact).
func (n *Node) handle(t wire.MsgType, payload []byte, remote net.Addr, sp *trace.Span, dst []byte) (respType wire.MsgType, out []byte, fatal bool) {
	start := time.Now()
	switch t {
	case wire.MsgInsert:
		if n.draining.Load() {
			n.rejects.Add(1)
			sp.Eventf("rejected: draining")
			return wire.MsgError, wire.AppendErrorKind(dst, wire.ErrKindDraining, "draining: writes refused"), false
		}
		e, _, err := wire.DecodeEntry(payload)
		if err != nil {
			n.badReqs.Add(1)
			n.logger.Warn("bad insert", "remote", remote, "err", err)
			return wire.MsgError, wire.AppendErrorKind(dst, wire.ErrKindBadRequest, "malformed insert"), true
		}
		n.hot.ObserveInsert(e.GUID)
		st := sp.NewChild("store.put")
		_, err = n.store.Put(e)
		st.End()
		if err != nil {
			// A store-level refusal (validation) is the peer's fault;
			// reject the request without tearing down the connection.
			n.countErr()
			n.logger.Warn("store rejected entry", "remote", remote, "err", err)
			return wire.MsgError, wire.AppendErrorKind(dst, wire.ErrKindBadRequest, "store rejected entry"), false
		}
		n.inserts.Add(1)
		n.hInsert.ObserveSinceExemplar(start, sp.TraceID())
		return wire.MsgInsertAck, dst, false

	case wire.MsgLookup:
		g, _, err := wire.DecodeGUID(payload)
		if err != nil {
			n.badReqs.Add(1)
			return wire.MsgError, wire.AppendErrorKind(dst, wire.ErrKindBadRequest, "malformed lookup"), true
		}
		n.hot.ObserveLookup(g)
		st := sp.NewChild("store.get")
		var aerr error
		// Encode inside View, under the store's read lock:
		// AppendLookupResp copies every byte of the entry into dst, so
		// nothing aliases store memory once View returns — a zero-copy
		// read with a copy-out boundary, sparing the clone Get pays.
		ok := n.store.View(g, func(e store.Entry) {
			out, aerr = wire.AppendLookupResp(dst, wire.LookupResp{Found: true, Entry: e})
		})
		if !ok {
			out, aerr = wire.AppendLookupResp(dst, wire.LookupResp{})
		}
		if st != nil { // skip the arg boxing entirely when unsampled
			st.Eventf("found=%t", ok)
			st.End()
		}
		n.lookups.Add(1)
		if ok {
			n.hits.Add(1)
		}
		if aerr != nil {
			n.countErr()
			return wire.MsgError, wire.AppendErrorKind(dst, wire.ErrKindInternal, "internal error"), false
		}
		n.hLookup.ObserveSinceExemplar(start, sp.TraceID())
		return wire.MsgLookupResp, out, false

	case wire.MsgDelete:
		if n.draining.Load() {
			n.rejects.Add(1)
			sp.Eventf("rejected: draining")
			return wire.MsgError, wire.AppendErrorKind(dst, wire.ErrKindDraining, "draining: writes refused"), false
		}
		g, _, err := wire.DecodeGUID(payload)
		if err != nil {
			n.badReqs.Add(1)
			return wire.MsgError, wire.AppendErrorKind(dst, wire.ErrKindBadRequest, "malformed delete"), true
		}
		st := sp.NewChild("store.delete")
		existed := n.store.Delete(g)
		st.End()
		n.deletes.Add(1)
		flag := byte(0)
		if existed {
			flag = 1
		}
		n.hDelete.ObserveSinceExemplar(start, sp.TraceID())
		return wire.MsgDeleteAck, append(dst, flag), false

	case wire.MsgPing:
		return wire.MsgPong, dst, false

	case wire.MsgBatchInsert:
		if n.draining.Load() {
			n.rejects.Add(1)
			return wire.MsgError, wire.AppendErrorKind(dst, wire.ErrKindDraining, "draining: writes refused"), false
		}
		entries, err := wire.DecodeBatchInsert(payload)
		if err != nil {
			n.badReqs.Add(1)
			n.logger.Warn("bad batch insert", "remote", remote, "err", err)
			return wire.MsgError, wire.AppendErrorKind(dst, wire.ErrKindBadRequest, "malformed batch insert"), true
		}
		n.hBatchSize.Observe(float64(len(entries)))
		st := sp.NewChild("store.put_batch")
		if st != nil {
			st.Eventf("entries=%d", len(entries))
		}
		acked := make([]bool, len(entries))
		for i, e := range entries {
			n.hot.ObserveInsert(e.GUID)
			if _, err := n.store.Put(e); err != nil {
				n.countErr()
				continue
			}
			acked[i] = true
			n.inserts.Add(1)
		}
		st.End()
		out, err = wire.AppendBatchInsertAck(dst, acked)
		if err != nil {
			n.countErr()
			return wire.MsgError, wire.AppendErrorKind(dst, wire.ErrKindInternal, "internal error"), false
		}
		n.hBatchIns.ObserveSinceExemplar(start, sp.TraceID())
		return wire.MsgBatchInsertAck, out, false

	case wire.MsgBatchLookup:
		gs, err := wire.DecodeBatchLookup(payload)
		if err != nil {
			n.badReqs.Add(1)
			n.logger.Warn("bad batch lookup", "remote", remote, "err", err)
			return wire.MsgError, wire.AppendErrorKind(dst, wire.ErrKindBadRequest, "malformed batch lookup"), true
		}
		n.hBatchSize.Observe(float64(len(gs)))
		st := sp.NewChild("store.get_batch")
		if st != nil {
			st.Eventf("guids=%d", len(gs))
		}
		rs := make([]wire.LookupResp, len(gs))
		hits := 0
		for i, g := range gs {
			n.hot.ObserveLookup(g)
			e, ok := n.store.Get(g)
			rs[i] = wire.LookupResp{Found: ok, Entry: e}
			n.lookups.Add(1)
			if ok {
				n.hits.Add(1)
				hits++
			}
		}
		if st != nil {
			st.Eventf("hits=%d", hits)
			st.End()
		}
		out, err = wire.AppendBatchLookupResp(dst, rs)
		if err != nil {
			n.countErr()
			return wire.MsgError, wire.AppendErrorKind(dst, wire.ErrKindInternal, "internal error"), false
		}
		n.hBatchLkp.ObserveSinceExemplar(start, sp.TraceID())
		return wire.MsgBatchLookupResp, out, false

	default:
		n.countErr()
		n.logger.Warn("unknown frame", "type", t, "remote", remote)
		return wire.MsgError, wire.AppendErrorKind(dst, wire.ErrKindBadRequest, "unknown frame type"), true
	}
}

// serverBufs recycles read, scratch and response buffers across every
// connection and worker on the node. See DESIGN.md §9 for the ownership
// rules: a buffer obtained from the pool is owned until Put, and
// nothing decoded from it may alias it after release.
var serverBufs = wire.NewBufPool(256)

// serveConn processes frames until the peer disconnects. A connection
// starts in sequential v1 framing (strictly request/response); a client
// that sends MsgHello upgrades it to the multiplexed v2 protocol. v1
// clients never send MsgHello and keep the sequential loop forever.
//
// The loop owns two pooled per-connection buffers: readBuf receives
// each request frame in place and scratch receives each response, so a
// steady-state v1 request costs no codec allocations either.
func (n *Node) serveConn(conn net.Conn) {
	defer conn.Close()
	readBuf := serverBufs.Get(0)
	scratch := serverBufs.Get(0)
	defer func() {
		serverBufs.Put(readBuf)
		serverBufs.Put(scratch)
	}()
	// Per-connection admission limiter; shared with serveConnV2 if the
	// connection upgrades. Claims always drain when the connection dies:
	// v1 releases inline, v2 releases as each in-flight worker finishes.
	ca := &limiter{max: n.maxConnInflight}
	for {
		t, payload, err := wire.ReadFrameInto(conn, readBuf[:cap(readBuf)])
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				n.logger.Debug("read failed", "remote", conn.RemoteAddr(), "err", err)
			}
			return
		}
		if cap(payload) > cap(readBuf) {
			// The frame outgrew the pooled buffer; keep the bigger one
			// for the rest of the connection and recycle the old.
			serverBufs.Put(readBuf)
			readBuf = payload
		}
		if t == wire.MsgHello {
			v, feat, err := wire.DecodeHello(payload)
			if err != nil {
				n.badReqs.Add(1)
				n.replyErrAndClose(conn, wire.ErrKindBadRequest, "malformed hello")
				return
			}
			if v > wire.Version2 {
				v = wire.Version2
			}
			// Grant the intersection of what the peer asked for and what
			// this node supports: repair needs only v2 framing, the trace
			// extension additionally needs an attached tracer.
			var granted byte
			if v >= wire.Version2 {
				granted = feat & wire.FeatRepair
				if n.tracer != nil {
					granted |= feat & wire.FeatTrace
				}
			}
			if err := wire.WriteFrame(conn, wire.MsgHelloAck, wire.AppendHelloAckFeat(nil, v, granted)); err != nil {
				return
			}
			if v >= wire.Version2 {
				n.v2Conns.Add(1)
				n.logger.Debug("v2 upgrade", "remote", conn.RemoteAddr(), "feat", granted)
				n.serveConnV2(conn, granted, ca)
				return
			}
			continue // negotiated v1: stay sequential
		}
		if ok, global := n.tryAdmit(ca, t); !ok {
			// Sequential framing keeps the stream aligned: the shed reply
			// answers the refused request and the connection lives on.
			n.countShed(global)
			if err := wire.WriteFrame(conn, wire.MsgError, shedBody(global)); err != nil {
				return
			}
			continue
		}
		respType, out, fatal := n.handle(t, payload, conn.RemoteAddr(), nil, scratch[:0])
		n.admitRelease(ca)
		if cap(out) > cap(scratch) {
			serverBufs.Put(scratch)
			scratch = out
		}
		if fatal {
			// Anonymous framing cannot attribute the error to a request;
			// reply and close so the peer does not mispair responses.
			_ = wire.WriteFrame(conn, respType, out)
			return
		}
		if err := wire.WriteFrame(conn, respType, out); err != nil {
			n.logger.Debug("write failed", "remote", conn.RemoteAddr(), "err", err)
			return
		}
	}
}

// maxConnWorkers bounds concurrent handlers per v2 connection. Beyond
// this, reads pause and TCP backpressure throttles the peer — a
// misbehaving client cannot fan unbounded goroutines out of one socket.
const maxConnWorkers = 32

// v2Work is one identified frame awaiting a worker. It travels by value
// through an unbuffered channel, so handing a frame off allocates
// nothing. payload is pool-owned; the worker releases it.
type v2Work struct {
	t       wire.MsgType
	id      uint64
	payload []byte
	// ca is the connection's admission limiter; the read loop claimed a
	// per-conn + global slot for this frame, the worker releases both.
	ca *limiter
}

// serveConnV2 processes identified frames concurrently on a per-connection
// worker pool: the read loop hands each frame to an idle worker, lazily
// spawning up to maxConnWorkers, and workers write responses through a
// shared coalescing wire.Writer in completion order — which is the whole
// point: a slow batch insert does not block the pings behind it.
// Responses carry the request ID they answer; ordering is the client
// demuxer's job.
//
// The pool replaces the old goroutine-per-frame dispatch: a sequential
// request stream is served by one long-lived worker with zero per-frame
// goroutine or closure allocations, while a pipelined burst still fans
// out to maxConnWorkers. When every worker is busy the read loop blocks
// handing off the frame and TCP backpressure throttles the peer,
// exactly as the old semaphore did.
//
// feat holds the hello-granted feature flags: when FeatTrace was
// negotiated, frames with the trace bit carry a trace-context prefix
// that is stripped here, joined into a server-side span and answered
// with the base frame type. Without the negotiation, a traced frame is
// simply an unknown type — handle answers MsgError, the interop
// contract for peers that never asked for the extension.
//
// ca is the connection's admission limiter (created by serveConn). The
// read loop claims per-conn + global slots for each frame before the
// worker handoff and answers refusals with a pre-encoded ErrKindShed
// MsgError — so under overload the queue stops at the limiter instead
// of stacking behind busy workers, and the peer learns to back off
// rather than fail over. Workers release the claims as they finish,
// which also drains them naturally when the connection dies mid-burst.
func (n *Node) serveConnV2(conn net.Conn, feat byte, ca *limiter) {
	var wg sync.WaitGroup
	// A failed flush desynchronizes nothing (identified framing), but the
	// connection is done for: kill it, which also unblocks the read loop.
	w := wire.NewWriter(conn, func(error) { conn.Close() })
	work := make(chan v2Work)
	workers := 0
	defer wg.Wait()   // runs second: workers drain after close
	defer close(work) // runs first: stop the workers
	for {
		buf := serverBufs.Get(0)
		t, id, payload, err := wire.ReadFrameIDInto(conn, buf[:cap(buf)])
		if err != nil {
			serverBufs.Put(buf)
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				n.logger.Debug("v2 read failed", "remote", conn.RemoteAddr(), "err", err)
			}
			return
		}
		if cap(payload) != cap(buf) {
			// The frame outgrew the pooled buffer; recycle the original.
			// The worker releases the grown one.
			serverBufs.Put(buf)
		}
		n.v2Frames.Add(1)
		if ok, global := n.tryAdmit(ca, wire.BaseType(t)); !ok {
			// Refuse before the worker handoff: the reply goes out on the
			// read loop through the shared Writer (safe — workers already
			// write to it concurrently) with zero allocations.
			n.countShed(global)
			_ = w.WriteFrameID(wire.MsgError, id, shedBody(global))
			serverBufs.Put(payload)
			continue
		}
		wk := v2Work{t: t, id: id, payload: payload, ca: ca}
		select {
		case work <- wk: // an idle worker exists
		default:
			if workers < maxConnWorkers {
				workers++
				wg.Add(1)
				go func() {
					defer wg.Done()
					for wk := range work {
						n.serveFrameV2(conn, feat, w, wk)
					}
				}()
			}
			work <- wk // block until some worker frees up
		}
	}
}

// serveFrameV2 handles one identified frame on a worker goroutine and
// writes the response through the connection's shared Writer. It owns
// wk.payload (pool-released on return) and draws a response buffer from
// the pool; the Writer copies the response into its pending buffer
// before returning, so both buffers recycle immediately.
func (n *Node) serveFrameV2(conn net.Conn, feat byte, w *wire.Writer, wk v2Work) {
	defer n.admitRelease(wk.ca)
	t, id, payload := wk.t, wk.id, wk.payload
	readBuf := wk.payload // payload may be re-sliced below; release this
	defer serverBufs.Put(readBuf)
	start := time.Now()
	var tc trace.Context
	if wire.IsTraced(t) && feat&wire.FeatTrace != 0 {
		var terr error
		tc, payload, terr = wire.DecodeTraceContext(payload)
		if terr != nil {
			n.badReqs.Add(1)
			dst := serverBufs.Get(64)
			out := wire.AppendErrorKind(dst, wire.ErrKindBadRequest, "malformed trace context")
			// On write failure the Writer's onFail already closed the
			// connection; nothing more to do here.
			_ = w.WriteFrameID(wire.MsgError, id, out)
			serverBufs.Put(out)
			return
		}
		t = wire.BaseType(t)
	}
	if t == wire.MsgRepairDigest && feat&wire.FeatRepair != 0 {
		// Negotiated anti-entropy page (gossip.go): answered outside
		// handle so the foreground single-op path stays branch-for-branch
		// identical. Un-negotiated repair frames fall through to handle's
		// unknown-frame rejection.
		n.handleRepairDigest(w, id, payload)
		return
	}
	var sp *trace.Span
	if tc.Sampled {
		sp = n.tracer.StartSpanFromContext("server."+t.String(), tc)
	}
	// fatal is ignored: a malformed payload under identified framing is
	// answered with MsgError on its own request ID and the connection
	// stays usable — only a framing-layer error (handled by the read
	// loop) desynchronizes the stream.
	dst := serverBufs.Get(0)
	respType, out, _ := n.handle(t, payload, conn.RemoteAddr(), sp, dst)
	sp.End()
	if n.tracer.SlowEnabled() {
		n.tracer.ObserveServerOp("server."+t.String(), id, tc, start)
	}
	_ = w.WriteFrameID(respType, id, out)
	if cap(out) != cap(dst) {
		serverBufs.Put(dst) // the response outgrew dst; recycle it too
	}
	serverBufs.Put(out)
}
