package server

import (
	"sync/atomic"

	"dmap/internal/wire"
)

// limiter is a lock-free in-flight admission counter with an optional
// cap. max <= 0 means unbounded: the counter still tracks in-flight
// work (so the inflight gauge stays truthful) but never refuses.
//
// tryAcquire is optimistic — add, then undo on overshoot — so the
// admit path is a single atomic add when under the limit and exactly
// two when shedding. Under a racing burst the counter can transiently
// exceed max by the number of racing acquirers, each of which then
// backs off; the limit is enforced on admission, not on the transient.
type limiter struct {
	n   atomic.Int64
	max int64
}

// tryAcquire claims a slot, reporting false (and claiming nothing)
// when the limiter is at capacity.
func (l *limiter) tryAcquire() bool {
	if l.max <= 0 {
		l.n.Add(1)
		return true
	}
	if l.n.Add(1) > l.max {
		l.n.Add(-1)
		return false
	}
	return true
}

// acquire claims a slot unconditionally, ignoring the cap. Used for
// frames that must never be shed (pings: refusing the liveness probe
// would make an overloaded node indistinguishable from a dead one).
func (l *limiter) acquire() { l.n.Add(1) }

// release returns a slot.
func (l *limiter) release() { l.n.Add(-1) }

// inflight reports the currently claimed slots.
func (l *limiter) inflight() int64 { return l.n.Load() }

// Pre-encoded shed reply bodies: admission refusals happen on the read
// loop under overload, exactly when allocating is most harmful, so the
// MsgError payload (kind ‖ reason) is built once. wire.Writer and
// WriteFrame both copy the body before returning, so sharing one slice
// across connections is safe.
var (
	shedConnBody   = wire.AppendErrorKind(nil, wire.ErrKindShed, "overloaded: connection in-flight limit")
	shedGlobalBody = wire.AppendErrorKind(nil, wire.ErrKindShed, "overloaded: node in-flight limit")
)

// tryAdmit claims a per-connection slot then a global slot for one
// request frame. On refusal nothing stays claimed; global reports
// which limit refused (false = the per-conn limit). Pings are always
// admitted but still occupy slots, so the inflight gauge counts them.
//
// Both limiters are touched on every frame — including when both are
// unbounded — which is what keeps server.inflight live on all paths.
func (n *Node) tryAdmit(ca *limiter, t wire.MsgType) (ok bool, global bool) {
	if t == wire.MsgPing {
		ca.acquire()
		n.admit.acquire()
		return true, false
	}
	if !ca.tryAcquire() {
		return false, false
	}
	if !n.admit.tryAcquire() {
		ca.release()
		return false, true
	}
	return true, false
}

// admitRelease returns the slots tryAdmit claimed. It runs when the
// handler completes — on a worker for v2, inline for v1 — so a dying
// connection drains its claims as its workers finish, never leaking
// global capacity.
func (n *Node) admitRelease(ca *limiter) {
	ca.release()
	n.admit.release()
}

// countShed records one refused frame against the limit that refused it.
func (n *Node) countShed(global bool) {
	if global {
		n.shedsGlobal.Add(1)
	} else {
		n.shedsConn.Add(1)
	}
}

// shedBody returns the pre-encoded MsgError payload for a refusal.
func shedBody(global bool) []byte {
	if global {
		return shedGlobalBody
	}
	return shedConnBody
}
