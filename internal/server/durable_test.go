package server

import (
	"testing"

	"dmap/internal/store"
)

// Open → write → Close → Open must serve the written state: the node
// owns the durable store and flushes it on clean shutdown.
func TestOpenDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	e := testEntry()
	if _, err := n.Store().Put(e); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	// The store was closed with the node: further writes must fail.
	fresh := e
	fresh.GUID[0] ^= 0xFF
	if _, err := n.Store().Put(fresh); err == nil {
		t.Fatal("store still writable after node Close")
	}

	r, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, ok := r.Store().Get(e.GUID)
	if !ok || got.Version != e.Version {
		t.Fatalf("recovered entry = (%+v, %v)", got, ok)
	}
}

// An empty DataDir falls back to a memory-only store, and Close leaves
// a caller-provided store open (the node does not own it).
func TestOpenWithoutDataDir(t *testing.T) {
	n, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	st := store.New()
	m := NewWithOptions(st, Options{})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(testEntry()); err != nil {
		t.Fatalf("caller-owned store closed by node: %v", err)
	}
}

// Drain must leave every acknowledged write durable (Sync), and a
// shard-count mismatch must surface as an Open error.
func TestOpenDrainSyncsAndShardMismatch(t *testing.T) {
	dir := t.TempDir()
	n, err := Open(Options{DataDir: dir, Fsync: store.FsyncInterval, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Store().Put(testEntry()); err != nil {
		t.Fatal(err)
	}
	n.Drain()
	if !n.Draining() {
		t.Fatal("not draining")
	}
	n.Close()
	if _, err := Open(Options{DataDir: dir, Shards: 8}); err == nil {
		t.Fatal("shard-count change accepted")
	}
	r, err := Open(Options{DataDir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}
