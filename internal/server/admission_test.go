package server

import (
	"net"
	"testing"
	"time"

	"dmap/internal/guid"
	"dmap/internal/wire"
)

func startNodeOpts(t *testing.T, opts Options) (*Node, string) {
	t.Helper()
	n := NewWithOptions(nil, opts)
	addr, err := n.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n, addr
}

func TestLimiterEdgeCases(t *testing.T) {
	// max 0 and negative mean unbounded: never refuse, still count.
	for _, max := range []int64{0, -1} {
		l := &limiter{max: max}
		for i := 0; i < 1000; i++ {
			if !l.tryAcquire() {
				t.Fatalf("max=%d: refused at %d in flight", max, i)
			}
		}
		if got := l.inflight(); got != 1000 {
			t.Fatalf("max=%d: inflight = %d, want 1000", max, got)
		}
	}

	// A cap refuses exactly at the limit and recovers on release.
	l := &limiter{max: 2}
	if !l.tryAcquire() || !l.tryAcquire() {
		t.Fatal("limiter refused under its cap")
	}
	if l.tryAcquire() {
		t.Fatal("limiter admitted beyond its cap")
	}
	if got := l.inflight(); got != 2 {
		t.Fatalf("refused acquire leaked a claim: inflight = %d, want 2", got)
	}
	l.release()
	if !l.tryAcquire() {
		t.Fatal("limiter did not recover after release")
	}

	// Forced acquire (the ping path) ignores the cap but is counted.
	l.acquire()
	if got := l.inflight(); got != 3 {
		t.Fatalf("inflight after forced acquire = %d, want 3", got)
	}
}

func TestTryAdmitReleasesPerConnOnGlobalRefusal(t *testing.T) {
	n := NewWithOptions(nil, Options{MaxInflight: 1, MaxConnInflight: 8})
	ca := &limiter{max: n.maxConnInflight}
	n.admit.acquire() // saturate the global limit
	ok, global := n.tryAdmit(ca, wire.MsgLookup)
	if ok || !global {
		t.Fatalf("tryAdmit over global limit = (ok=%t, global=%t), want (false, true)", ok, global)
	}
	if got := ca.inflight(); got != 0 {
		t.Fatalf("per-conn claim leaked on global refusal: %d", got)
	}
	n.admit.release()
	if ok, _ := n.tryAdmit(ca, wire.MsgLookup); !ok {
		t.Fatal("tryAdmit refused under both limits")
	}
	n.admitRelease(ca)
	if ca.inflight() != 0 || n.admit.inflight() != 0 {
		t.Fatalf("admitRelease left claims: conn=%d global=%d", ca.inflight(), n.admit.inflight())
	}
}

// TestAdmissionZeroAlloc proves the admission check adds no allocations
// to the hot path: admit, release and the shed bookkeeping are all
// atomics over pre-built state.
func TestAdmissionZeroAlloc(t *testing.T) {
	n := NewWithOptions(nil, Options{MaxInflight: 64, MaxConnInflight: 32})
	ca := &limiter{max: n.maxConnInflight}
	if allocs := testing.AllocsPerRun(200, func() {
		if ok, _ := n.tryAdmit(ca, wire.MsgLookup); ok {
			n.admitRelease(ca)
		}
	}); allocs != 0 {
		t.Errorf("admit/release allocates %.1f/op, want 0", allocs)
	}
	// The refusal path too: a node being overloaded is exactly when an
	// allocating shed reply would hurt most.
	sat := NewWithOptions(nil, Options{MaxInflight: 1})
	sat.admit.acquire()
	if allocs := testing.AllocsPerRun(200, func() {
		ok, global := sat.tryAdmit(ca, wire.MsgLookup)
		if ok {
			t.Fatal("saturated node admitted")
		}
		sat.countShed(global)
		_ = shedBody(global)
	}); allocs != 0 {
		t.Errorf("shed path allocates %.1f/op, want 0", allocs)
	}
}

// TestShedDistinctFromDrainOverWire drives both refusal flavors through
// real TCP conns and checks a client can tell them apart by kind: a
// draining node answers ErrKindDraining, an overloaded node answers
// ErrKindShed, for the same request bytes.
func TestShedDistinctFromDrainOverWire(t *testing.T) {
	insert, err := wire.AppendEntry(nil, testEntry())
	if err != nil {
		t.Fatal(err)
	}

	refusal := func(n *Node, addr string) wire.ErrKind {
		t.Helper()
		conn := dial(t, addr)
		if err := wire.WriteFrame(conn, wire.MsgInsert, insert); err != nil {
			t.Fatal(err)
		}
		typ, body, err := wire.ReadFrame(conn)
		if err != nil || typ != wire.MsgError {
			t.Fatalf("reply = (%v, %v), want MsgError", typ, err)
		}
		kind, _, err := wire.DecodeErrorKind(body)
		if err != nil {
			t.Fatal(err)
		}
		return kind
	}

	drainNode, drainAddr := startNode(t)
	drainNode.Drain()
	shedNode, shedAddr := startNodeOpts(t, Options{MaxInflight: 1})
	shedNode.admit.acquire() // node saturated: every request refused
	defer shedNode.admit.release()

	dk := refusal(drainNode, drainAddr)
	sk := refusal(shedNode, shedAddr)
	if dk != wire.ErrKindDraining {
		t.Errorf("draining refusal kind = %v, want ErrKindDraining", dk)
	}
	if sk != wire.ErrKindShed {
		t.Errorf("overload refusal kind = %v, want ErrKindShed", sk)
	}
	if dk == sk {
		t.Error("drain and shed refusals are indistinguishable on the wire")
	}
	if sheds := shedNode.Stats().Sheds; sheds != 1 {
		t.Errorf("shed node Stats().Sheds = %d, want 1", sheds)
	}
	if sheds := drainNode.Stats().Sheds; sheds != 0 {
		t.Errorf("drain node Stats().Sheds = %d, want 0", sheds)
	}
}

// TestPingNeverShed: an overloaded node still answers liveness probes —
// shedding pings would make saturation look like death and trigger the
// failover stampede admission control exists to prevent.
func TestPingNeverShed(t *testing.T) {
	n, addr := startNodeOpts(t, Options{MaxInflight: 1})
	n.admit.acquire()
	defer n.admit.release()
	conn := dial(t, addr)
	if err := wire.WriteFrame(conn, wire.MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgPong {
		t.Fatalf("ping on saturated node = (%v, %v), want MsgPong", typ, err)
	}
}

// upgradeV2 negotiates v2 framing on a raw conn.
func upgradeV2(t *testing.T, conn net.Conn) {
	t.Helper()
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.AppendHello(nil, wire.Version2)); err != nil {
		t.Fatal(err)
	}
	typ, body, err := wire.ReadFrame(conn)
	if err != nil || typ != wire.MsgHelloAck {
		t.Fatalf("hello reply = (%v, %v)", typ, err)
	}
	if v, _, err := wire.DecodeHelloAck(body); err != nil || v != wire.Version2 {
		t.Fatalf("negotiated (%v, %v), want v2", v, err)
	}
}

// TestShedPipelinedV2 saturates a node and pipelines a burst of
// identified frames at it: every frame must be answered under its own
// request ID with an ErrKindShed error, the connection must survive,
// and service must resume once the node has capacity again.
func TestShedPipelinedV2(t *testing.T) {
	n, addr := startNodeOpts(t, Options{MaxInflight: 1})
	conn := dial(t, addr)
	upgradeV2(t, conn)

	n.admit.acquire() // saturate
	const burst = 64
	g := guid.New("shed-target")
	var reqs []byte
	for id := uint64(1); id <= burst; id++ {
		var err error
		reqs, err = wire.AppendFrameID(reqs, wire.MsgLookup, id, wire.AppendGUID(nil, g))
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(reqs); err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	buf := make([]byte, 4096)
	for i := 0; i < burst; i++ {
		typ, id, body, err := wire.ReadFrameIDInto(conn, buf)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if typ != wire.MsgError {
			t.Fatalf("reply id %d = %v, want MsgError", id, typ)
		}
		kind, _, err := wire.DecodeErrorKind(body)
		if err != nil || kind != wire.ErrKindShed {
			t.Fatalf("reply id %d kind = (%v, %v), want ErrKindShed", id, kind, err)
		}
		if seen[id] || id < 1 || id > burst {
			t.Fatalf("reply id %d duplicated or out of range", id)
		}
		seen[id] = true
	}
	if got := n.Stats().Sheds; got != burst {
		t.Errorf("Sheds = %d, want %d", got, burst)
	}

	// Capacity back: the same connection serves again.
	n.admit.release()
	probe, err := wire.AppendFrameID(nil, wire.MsgLookup, 999, wire.AppendGUID(nil, g))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(probe); err != nil {
		t.Fatal(err)
	}
	typ, id, _, err := wire.ReadFrameIDInto(conn, buf)
	if err != nil || typ != wire.MsgLookupResp || id != 999 {
		t.Fatalf("post-recovery reply = (%v, id=%d, %v), want MsgLookupResp id 999", typ, id, err)
	}
}

// TestLimiterReleaseOnConnDeath kills a v2 connection with admitted
// frames in flight and verifies the global limiter drains back to zero:
// worker completion releases claims, so a dying conn cannot leak node
// capacity.
func TestLimiterReleaseOnConnDeath(t *testing.T) {
	n, addr := startNodeOpts(t, Options{MaxInflight: 16, MaxConnInflight: 8})
	conn := dial(t, addr)
	upgradeV2(t, conn)

	var reqs []byte
	for id := uint64(1); id <= 200; id++ {
		var err error
		reqs, err = wire.AppendFrameID(reqs, wire.MsgLookup, id, wire.AppendGUID(nil, guid.New("die")))
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(reqs); err != nil {
		t.Fatal(err)
	}
	conn.Close() // die mid-burst, replies unread

	deadline := time.Now().Add(5 * time.Second)
	for n.admit.inflight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("global inflight stuck at %d after conn death", n.admit.inflight())
		}
		time.Sleep(time.Millisecond)
	}

	// The freed capacity is usable by a new connection.
	conn2 := dial(t, addr)
	if err := wire.WriteFrame(conn2, wire.MsgLookup, wire.AppendGUID(nil, guid.New("alive"))); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wire.ReadFrame(conn2); err != nil || typ != wire.MsgLookupResp {
		t.Fatalf("post-death lookup = (%v, %v), want MsgLookupResp", typ, err)
	}
}

// TestPerConnVsGlobalAttribution: refusals at the per-conn limit and at
// the global limit land on their own counters.
func TestPerConnVsGlobalAttribution(t *testing.T) {
	n := NewWithOptions(nil, Options{MaxInflight: 100, MaxConnInflight: 1})
	ca := &limiter{max: n.maxConnInflight}
	ca.acquire() // conn at its limit
	if ok, global := n.tryAdmit(ca, wire.MsgLookup); ok || global {
		t.Fatalf("per-conn refusal = (ok=%t, global=%t), want (false, false)", ok, global)
	}
	n.countShed(false)
	if n.shedsConn.Value() != 1 || n.shedsGlobal.Value() != 0 {
		t.Errorf("after conn shed: conn=%d global=%d", n.shedsConn.Value(), n.shedsGlobal.Value())
	}
	ca.release()
	for i := 0; i < 100; i++ {
		n.admit.acquire() // node at its limit
	}
	if ok, global := n.tryAdmit(ca, wire.MsgLookup); ok || !global {
		t.Fatalf("global refusal = (ok=%t, global=%t), want (false, true)", ok, global)
	}
	n.countShed(true)
	if n.shedsConn.Value() != 1 || n.shedsGlobal.Value() != 1 {
		t.Errorf("after global shed: conn=%d global=%d", n.shedsConn.Value(), n.shedsGlobal.Value())
	}
	if got := n.Stats().Sheds; got != 2 {
		t.Errorf("Stats().Sheds = %d, want 2", got)
	}
}
