package core

import (
	"testing"

	"dmap/internal/guid"
	"dmap/internal/store"
)

// TestReconcileAfterRestart models the §III-D1 rejoin: a replica AS
// crashes, recovers from a durable image that predates some updates, and
// must reconcile with its deputies by §III-D2 version numbers before it
// can serve reads — zero stale reads afterwards.
func TestReconcileAfterRestart(t *testing.T) {
	sys := newTestSystem(t, 3, false)

	// Populate, then pick a victim AS that hosts several mappings.
	var entries []store.Entry
	for i := 1; i <= 80; i++ {
		e := store.Entry{
			GUID:    guid.FromUint64(uint64(i)),
			NAs:     []store.NA{{AS: i % 100}},
			Version: 1,
		}
		entries = append(entries, e)
		if _, err := sys.Insert(e, i%100); err != nil {
			t.Fatal(err)
		}
	}
	victim := -1
	for as, n := range sys.HostedCounts() {
		if n >= 3 {
			victim = as
			break
		}
	}
	if victim < 0 {
		t.Fatal("no AS hosts >= 3 mappings")
	}

	// Snapshot the victim's pre-update state: this is what its durable
	// store will recover after the crash.
	recovered := store.New()
	st, err := sys.Store(victim)
	if err != nil {
		t.Fatal(err)
	}
	hosted := 0
	st.Range(func(e store.Entry) bool {
		hosted++
		if hosted%3 != 0 { // every third mapping lost with the WAL tail
			if _, err := recovered.Put(e); err != nil {
				t.Fatal(err)
			}
		}
		return true
	})

	// While the victim is "down", every mapping moves to version 2.
	for i := range entries {
		entries[i].Version = 2
		if _, err := sys.Update(entries[i], 0); err != nil {
			t.Fatal(err)
		}
	}

	// Restart: the victim comes back with its stale recovered image.
	sys.stores[victim].Store(recovered)
	rep, err := sys.VerifyConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if rep.VersionSkews == 0 && rep.MissingReplicas == 0 {
		t.Fatal("test setup produced no divergence to reconcile")
	}

	pulled, err := sys.ReconcileAS(victim)
	if err != nil {
		t.Fatal(err)
	}
	if pulled != hosted {
		t.Errorf("ReconcileAS pulled %d, want %d (every hosted mapping was stale or missing)", pulled, hosted)
	}

	// Zero stale reads: everything the victim hosts is at max version.
	stale := 0
	recovered.Range(func(e store.Entry) bool {
		if e.Version != 2 {
			stale++
		}
		return true
	})
	if stale != 0 {
		t.Errorf("%d stale mappings served post-reconciliation", stale)
	}
	rep, err = sys.VerifyConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Errorf("post-reconcile consistency: %v", rep)
	}

	// Reconciling again is a no-op (idempotent).
	pulled, err = sys.ReconcileAS(victim)
	if err != nil {
		t.Fatal(err)
	}
	if pulled != 0 {
		t.Errorf("second ReconcileAS pulled %d, want 0", pulled)
	}

	if _, err := sys.ReconcileAS(-1); err == nil {
		t.Error("negative AS accepted")
	}
	if _, err := sys.ReconcileAS(sys.NumAS()); err == nil {
		t.Error("out-of-range AS accepted")
	}
}

// A restarted node holding local replicas (§III-C) must refresh those
// too, not only its Algorithm-1 global placements.
func TestReconcilePullsLocalReplicas(t *testing.T) {
	sys := newTestSystem(t, 2, true)
	src := 7
	e := store.Entry{
		GUID:    guid.New("mobile"),
		NAs:     []store.NA{{AS: src}},
		Version: 1,
	}
	if _, err := sys.Insert(e, src); err != nil {
		t.Fatal(err)
	}
	if _, ok := mustStore(t, sys, src).Get(e.GUID); !ok {
		t.Fatal("local replica not stored at srcAS")
	}
	e.Version = 2
	if _, err := sys.Update(e, src); err != nil {
		t.Fatal(err)
	}
	// src crashes and loses the local replica entirely.
	sys.stores[src].Store(store.New())
	if _, err := sys.ReconcileAS(src); err != nil {
		t.Fatal(err)
	}
	got, ok := mustStore(t, sys, src).Get(e.GUID)
	if !ok || got.Version != 2 {
		t.Fatalf("local replica after reconcile = (%+v, %v), want v2", got, ok)
	}
}

func mustStore(t *testing.T, sys *System, as int) *store.Store {
	t.Helper()
	st, err := sys.Store(as)
	if err != nil {
		t.Fatal(err)
	}
	return st
}
