package core

import (
	"errors"
	"sort"
	"testing"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/store"
	"dmap/internal/topology"
)

// flatLatency is a trivial LatencyModel: RTT is |src-dst|+1 ms, and 1 ms
// within the same AS — enough structure to make "closest replica" and
// "local is fastest" observable in tests.
type flatLatency struct{}

func (flatLatency) RTT(src, dst int) topology.Micros {
	d := src - dst
	if d < 0 {
		d = -d
	}
	return topology.MicrosFromMillis(float64(d + 1))
}

func newTestSystem(t *testing.T, k int, local bool) *System {
	t.Helper()
	tbl := genTable(t, 11)
	r, err := NewResolver(guid.MustHasher(k, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(SystemConfig{Resolver: r, NumAS: 500, LocalReplica: local})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func testEntry(name string, version uint64, as int) store.Entry {
	return store.Entry{
		GUID:    guid.New(name),
		NAs:     []store.NA{{AS: as, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}},
		Version: version,
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{Resolver: nil, NumAS: 10}); err == nil {
		t.Error("nil resolver should fail")
	}
	tbl := genTable(t, 1)
	r, _ := NewResolver(guid.MustHasher(1, 0), tbl, 0)
	if _, err := NewSystem(SystemConfig{Resolver: r, NumAS: 0}); err == nil {
		t.Error("NumAS=0 should fail")
	}
}

func TestInsertLookupRoundTrip(t *testing.T) {
	sys := newTestSystem(t, 5, false)
	e := testEntry("laptop", 1, 42)
	placements, err := sys.Insert(e, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) != 5 {
		t.Fatalf("placements = %d", len(placements))
	}
	// Every replica AS holds the entry.
	for _, p := range placements {
		if sys.StoreLen(p.AS) == 0 {
			t.Errorf("replica AS %d holds nothing", p.AS)
		}
	}
	got, outcome, err := sys.Lookup(e.GUID, 7, flatLatency{}, LookupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.NAs[0].AS != 42 {
		t.Errorf("lookup NAs = %+v", got.NAs)
	}
	if outcome.Attempts != 1 || outcome.UsedLocal {
		t.Errorf("outcome = %+v", outcome)
	}
	// Closest-replica selection: ServedBy must minimize flat RTT.
	best := placements[0].AS
	for _, p := range placements {
		if d := p.AS - 7; (d < 0 && -(d) < abs(best-7)) || (d >= 0 && d < abs(best-7)) {
			best = p.AS
		}
	}
	if outcome.ServedBy != best {
		t.Errorf("ServedBy = %d, want closest replica %d", outcome.ServedBy, best)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestLookupNotFound(t *testing.T) {
	sys := newTestSystem(t, 3, false)
	_, outcome, err := sys.Lookup(guid.New("ghost"), 0, flatLatency{}, LookupOptions{})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if outcome.Attempts != 3 {
		t.Errorf("attempts = %d, want K=3 (every replica tried)", outcome.Attempts)
	}
	if outcome.RTT <= 0 {
		t.Error("failed lookup still costs time")
	}
}

func TestLookupSrcValidation(t *testing.T) {
	sys := newTestSystem(t, 1, false)
	if _, _, err := sys.Lookup(guid.New("g"), -1, flatLatency{}, LookupOptions{}); err == nil {
		t.Error("negative src should fail")
	}
	if _, err := sys.Insert(testEntry("g", 1, 1), 1e6); err == nil {
		t.Error("out-of-range src should fail")
	}
}

func TestUpdateVersioning(t *testing.T) {
	sys := newTestSystem(t, 3, false)
	g := guid.New("phone")
	if _, err := sys.Insert(testEntry("phone", 1, 10), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Update(testEntry("phone", 2, 20), 0); err != nil {
		t.Fatal(err)
	}
	// A delayed, reordered stale update must not roll back.
	if _, err := sys.Update(testEntry("phone", 1, 10), 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := sys.Lookup(g, 0, flatLatency{}, LookupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 || got.NAs[0].AS != 20 {
		t.Errorf("after updates: %+v", got)
	}
}

func TestDelete(t *testing.T) {
	sys := newTestSystem(t, 5, true)
	e := testEntry("gone", 1, 3)
	if _, err := sys.Insert(e, 3); err != nil {
		t.Fatal(err)
	}
	removed, err := sys.Delete(e.GUID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if removed < 5 {
		t.Errorf("removed = %d, want >= K=5", removed)
	}
	if _, _, err := sys.Lookup(e.GUID, 3, flatLatency{}, LookupOptions{}); !errors.Is(err, ErrNotFound) {
		t.Error("deleted GUID should not resolve")
	}
}

func TestLocalReplica(t *testing.T) {
	sys := newTestSystem(t, 5, true)
	const home = 123
	e := testEntry("local", 1, home)
	placements, err := sys.Insert(e, home)
	if err != nil {
		t.Fatal(err)
	}
	// Requester in the same AS: local copy answers at intra-AS RTT (1 ms
	// under flatLatency), unless a global replica happens to be co-located.
	_, outcome, err := sys.Lookup(e.GUID, home, flatLatency{}, LookupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	coLocated := false
	for _, p := range placements {
		if p.AS == home {
			coLocated = true
		}
	}
	if !coLocated && !outcome.UsedLocal {
		t.Errorf("outcome = %+v, want local replica win", outcome)
	}
	if outcome.RTT != topology.MicrosFromMillis(1) {
		t.Errorf("local RTT = %v, want 1 ms", outcome.RTT)
	}
	if outcome.ServedBy != home {
		t.Errorf("ServedBy = %d, want home %d", outcome.ServedBy, home)
	}
}

func TestLocalReplicaOffByDefault(t *testing.T) {
	sys := newTestSystem(t, 5, false)
	const home = 123
	e := testEntry("nolocal", 1, home)
	if _, err := sys.Insert(e, home); err != nil {
		t.Fatal(err)
	}
	_, outcome, err := sys.Lookup(e.GUID, home, flatLatency{}, LookupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.UsedLocal {
		t.Error("local replica should be disabled")
	}
}

func TestLookupMissRetries(t *testing.T) {
	sys := newTestSystem(t, 5, false)
	e := testEntry("churny", 1, 9)
	placements, err := sys.Insert(e, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Reproduce the system's replica ordering (RTT, then AS on ties) and
	// mark the first two distinct ASs as answering "GUID missing".
	lm := flatLatency{}
	type cand struct {
		as  int
		rtt topology.Micros
	}
	cands := make([]cand, 0, 5)
	for _, p := range placements {
		cands = append(cands, cand{p.AS, lm.RTT(50, p.AS)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].rtt != cands[j].rtt {
			return cands[i].rtt < cands[j].rtt
		}
		return cands[i].as < cands[j].as
	})
	missing := make(map[int]bool)
	for _, c := range cands {
		if len(missing) < 2 {
			missing[c.as] = true
		}
	}
	// Expected: every leading candidate in a missing AS costs its RTT;
	// the first candidate in a live AS answers.
	wantAttempts := 0
	var wantRTT topology.Micros
	for _, c := range cands {
		wantAttempts++
		wantRTT += c.rtt
		if !missing[c.as] {
			break
		}
	}

	_, outcome, err := sys.Lookup(e.GUID, 50, lm, LookupOptions{
		Miss: func(as int) bool { return missing[as] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Attempts != wantAttempts {
		t.Errorf("attempts = %d, want %d", outcome.Attempts, wantAttempts)
	}
	if outcome.RTT != wantRTT {
		t.Errorf("RTT = %v, want cumulative %v", outcome.RTT, wantRTT)
	}
	if missing[outcome.ServedBy] {
		t.Errorf("served by a missing AS %d", outcome.ServedBy)
	}
}

func TestLookupCrashTimeout(t *testing.T) {
	sys := newTestSystem(t, 2, false)
	e := testEntry("crash", 1, 9)
	placements, err := sys.Insert(e, 9)
	if err != nil {
		t.Fatal(err)
	}
	lm := flatLatency{}
	// Crash the closer replica.
	first, second := placements[0].AS, placements[1].AS
	if lm.RTT(0, second) < lm.RTT(0, first) {
		first, second = second, first
	}
	_, outcome, err := sys.Lookup(e.GUID, 0, lm, LookupOptions{
		Crashed: func(as int) bool { return as == first },
		Timeout: topology.MicrosFromMillis(500),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := topology.MicrosFromMillis(500) + lm.RTT(0, second)
	if outcome.RTT != want {
		t.Errorf("RTT = %v, want timeout+retry %v", outcome.RTT, want)
	}
	if outcome.Attempts != 2 {
		t.Errorf("attempts = %d", outcome.Attempts)
	}
}

func TestLookupAllCrashedFallsBackToLocal(t *testing.T) {
	sys := newTestSystem(t, 2, true)
	const home = 77
	e := testEntry("resilient", 1, home)
	if _, err := sys.Insert(e, home); err != nil {
		t.Fatal(err)
	}
	got, outcome, err := sys.Lookup(e.GUID, home, flatLatency{}, LookupOptions{
		Crashed: func(as int) bool { return as != home },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !outcome.UsedLocal || got.GUID != e.GUID {
		t.Errorf("outcome = %+v", outcome)
	}
}

func TestSelectLeastHops(t *testing.T) {
	sys := newTestSystem(t, 5, false)
	e := testEntry("hops", 1, 1)
	placements, err := sys.Insert(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Craft hop counts that rank the farthest-by-RTT replica first.
	hops := make([]int32, sys.NumAS())
	for i := range hops {
		hops[i] = 100
	}
	var farthest int
	lm := flatLatency{}
	for _, p := range placements {
		if lm.RTT(0, p.AS) > lm.RTT(0, farthest) {
			farthest = p.AS
		}
	}
	hops[farthest] = 1
	_, outcome, err := sys.Lookup(e.GUID, 0, lm, LookupOptions{
		Selection: SelectLeastHops,
		Hops:      hops,
	})
	if err != nil {
		t.Fatal(err)
	}
	if outcome.ServedBy != farthest {
		t.Errorf("ServedBy = %d, want hop-selected %d", outcome.ServedBy, farthest)
	}
	// Missing hops must error.
	if _, _, err := sys.Lookup(e.GUID, 0, lm, LookupOptions{Selection: SelectLeastHops}); err == nil {
		t.Error("SelectLeastHops without Hops should fail")
	}
}

func TestWithdrawMigration(t *testing.T) {
	sys := newTestSystem(t, 5, false)
	// Insert a population, then withdraw the prefix hosting some replica
	// of a chosen GUID; the mapping must remain resolvable.
	var entries []store.Entry
	for i := 1; i <= 50; i++ {
		e := store.Entry{
			GUID:    guid.FromUint64(uint64(i)),
			NAs:     []store.NA{{AS: i % 100}},
			Version: 1,
		}
		entries = append(entries, e)
		if _, err := sys.Insert(e, i%100); err != nil {
			t.Fatal(err)
		}
	}
	victim := entries[17]
	placements, err := sys.Resolver().Place(victim.GUID)
	if err != nil {
		t.Fatal(err)
	}
	target := placements[2]
	pfxEntry, ok := sys.Resolver().Table().Lookup(target.Addr)
	if !ok {
		t.Fatal("placement prefix missing")
	}

	migrated, err := sys.WithdrawPrefix(pfxEntry.Prefix, pfxEntry.AS)
	if err != nil {
		t.Fatal(err)
	}
	if migrated == 0 {
		t.Error("expected at least one migrated mapping")
	}
	// Every entry must still resolve (the withdrawn replica now follows
	// the hole protocol to the deputy).
	for _, e := range entries {
		got, _, err := sys.Lookup(e.GUID, 0, flatLatency{}, LookupOptions{})
		if err != nil {
			t.Fatalf("GUID %s unresolvable after withdrawal: %v", e.GUID.Short(), err)
		}
		if got.GUID != e.GUID {
			t.Fatal("wrong entry")
		}
	}
	// The new placement of the victim's replica must differ.
	newPlacements, err := sys.Resolver().Place(victim.GUID)
	if err != nil {
		t.Fatal(err)
	}
	if newPlacements[2].AS == target.AS && newPlacements[2].Addr == target.Addr {
		t.Error("withdrawn placement unchanged")
	}
	// Withdrawing an unannounced prefix errors.
	if _, err := sys.WithdrawPrefix(pfxEntry.Prefix, pfxEntry.AS); err == nil {
		t.Error("double withdrawal should fail")
	}
}

func TestAnnounceLazyMigration(t *testing.T) {
	// Build a table with a known hole, place a GUID whose first hash
	// lands in it (so a deputy hosts it), then announce the hole and
	// verify RepairMiss pulls the mapping to the announcing AS.
	tbl := halfTable(t) // only lower half announced, AS 0
	r, err := NewResolver(guid.MustHasher(1, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(SystemConfig{Resolver: r, NumAS: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Find a GUID whose first hash has the top bit set (in the hole).
	var g guid.GUID
	for i := 0; ; i++ {
		g = guid.FromUint64(uint64(i))
		if r.Hasher().Hash(g, 0)>>31 == 1 {
			break
		}
	}
	e := store.Entry{GUID: g, NAs: []store.NA{{AS: 5}}, Version: 1}
	if _, err := sys.Insert(e, 5); err != nil {
		t.Fatal(err)
	}
	if sys.StoreLen(0) != 1 {
		t.Fatalf("deputy AS 0 should hold the mapping, got %d", sys.StoreLen(0))
	}

	// AS 1 announces the upper half; the GUID's hash now lands there.
	upper, err := netaddr.NewPrefix(netaddr.Addr(1<<31), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AnnouncePrefix(upper, 1); err != nil {
		t.Fatal(err)
	}
	pl, err := r.PlaceReplica(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pl.AS != 1 {
		t.Fatalf("placement after announcement = %+v, want AS 1", pl)
	}
	// The first query reaching AS 1 misses; RepairMiss pulls from deputy.
	if sys.StoreLen(1) != 0 {
		t.Fatal("AS 1 should not hold the mapping yet")
	}
	recovered, err := sys.RepairMiss(g, upper, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !recovered {
		t.Fatal("RepairMiss found nothing")
	}
	if sys.StoreLen(1) != 1 || sys.StoreLen(0) != 0 {
		t.Errorf("after repair: AS1=%d AS0=%d, want 1/0", sys.StoreLen(1), sys.StoreLen(0))
	}
	// Second repair is a no-op.
	if again, _ := sys.RepairMiss(g, upper, 1); again {
		t.Error("second RepairMiss should find nothing")
	}
}

func TestUpdateLatencyIsMaxOverReplicas(t *testing.T) {
	sys := newTestSystem(t, 5, false)
	g := guid.New("upd")
	placements, err := sys.Resolver().Place(g)
	if err != nil {
		t.Fatal(err)
	}
	lm := flatLatency{}
	var want topology.Micros
	for _, p := range placements {
		if rtt := lm.RTT(3, p.AS); rtt > want {
			want = rtt
		}
	}
	got, err := sys.UpdateLatency(g, 3, lm)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("UpdateLatency = %v, want max %v", got, want)
	}
}

func TestHostedCounts(t *testing.T) {
	sys := newTestSystem(t, 5, false)
	total := 0
	for i := 1; i <= 20; i++ {
		placements, err := sys.Insert(store.Entry{
			GUID:    guid.FromUint64(uint64(i)),
			NAs:     []store.NA{{AS: 0}},
			Version: 1,
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		total += len(placements)
	}
	counts := sys.HostedCounts()
	sum := 0
	for _, c := range counts {
		sum += c
	}
	// Replicas of one GUID may share an AS only if the hash collides on
	// the same store key — same GUID, so the store deduplicates. Sum must
	// equal the number of distinct (AS, GUID) pairs, ≤ total.
	if sum > total || sum < 20*4 {
		t.Errorf("hosted sum = %d, placements = %d", sum, total)
	}
}

func TestVerifyConsistencyCleanSystem(t *testing.T) {
	sys := newTestSystem(t, 5, true)
	for i := 1; i <= 40; i++ {
		e := store.Entry{
			GUID:    guid.FromUint64(uint64(i)),
			NAs:     []store.NA{{AS: i % 100}},
			Version: 1,
		}
		if _, err := sys.Insert(e, i%100); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := sys.VerifyConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Errorf("clean system inconsistent: %v", rep)
	}
	if rep.Mappings != 40 {
		t.Errorf("audited %d mappings, want 40", rep.Mappings)
	}
}

func TestVerifyConsistencyAfterChurn(t *testing.T) {
	sys := newTestSystem(t, 5, false)
	for i := 1; i <= 40; i++ {
		e := store.Entry{
			GUID:    guid.FromUint64(uint64(i)),
			NAs:     []store.NA{{AS: i % 100}},
			Version: 1,
		}
		if _, err := sys.Insert(e, i%100); err != nil {
			t.Fatal(err)
		}
	}
	// Withdraw a replica-hosting prefix: migration must leave the system
	// consistent with the NEW placement function.
	pl, err := sys.Resolver().PlaceReplica(guid.FromUint64(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	pfx, ok := sys.Resolver().Table().Lookup(pl.Addr)
	if !ok {
		t.Fatal("no prefix")
	}
	if _, err := sys.WithdrawPrefix(pfx.Prefix, pfx.AS); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.VerifyConsistency()
	if err != nil {
		t.Fatal(err)
	}
	// Withdrawal re-homes orphans; mappings the withdrawn AS hosted via
	// OTHER prefixes remain valid. Remaining entries at the withdrawing
	// AS for unaffected prefixes are fine; no replicas may be missing.
	if rep.MissingReplicas != 0 {
		t.Errorf("missing replicas after migration: %v", rep)
	}
	if rep.VersionSkews != 0 {
		t.Errorf("version skews after migration: %v", rep)
	}
}

func TestVerifyConsistencyDetectsTampering(t *testing.T) {
	sys := newTestSystem(t, 3, false)
	e := testEntry("tampered", 1, 9)
	placements, err := sys.Insert(e, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Delete one replica behind the system's back.
	st, err := sys.Store(placements[1].AS)
	if err != nil {
		t.Fatal(err)
	}
	st.Delete(e.GUID)
	rep, err := sys.VerifyConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MissingReplicas == 0 {
		t.Errorf("audit missed a deleted replica: %v", rep)
	}
	// Plant a stray at an unrelated AS.
	stray, err := sys.Store(499)
	if err != nil {
		t.Fatal(err)
	}
	isReplica := false
	for _, p := range placements {
		if p.AS == 499 {
			isReplica = true
		}
	}
	if !isReplica {
		if _, err := stray.Put(testEntry("tampered", 1, 9)); err != nil {
			t.Fatal(err)
		}
		rep, err = sys.VerifyConsistency()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Strays == 0 {
			t.Errorf("audit missed a stray: %v", rep)
		}
	}
	// Version skew: bump one replica only.
	e2 := testEntry("tampered", 7, 10)
	if _, err := st.Put(e2); err != nil {
		t.Fatal(err)
	}
	rep, err = sys.VerifyConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if rep.VersionSkews == 0 {
		t.Errorf("audit missed a version skew: %v", rep)
	}
	if rep.Ok() {
		t.Error("tampered system reported Ok")
	}
	if rep.String() == "" {
		t.Error("String output")
	}
}
