// Anti-entropy repair: the version-compare/merge logic shared by the
// rejoin reconciliation of §III-D1 (ReconcileAS), the nodesim gossip
// rounds and the server's background repair sweeps (DESIGN.md §12).
//
// All three paths reduce to the same primitive: given fingerprints of
// what a peer holds, decide — under §III-D2 highest-seq-wins — which
// entries the local store should push because its copy is fresher, and
// which it should pull because the peer's is. The store's freshest-wins
// Put makes every transfer idempotent, so repair needs no coordination
// beyond the compare itself.
package core

import (
	"dmap/internal/guid"
	"dmap/internal/store"
)

// DiffDigests compares a peer's digest page against st. The page is a
// *filtered* view — the peer only fingerprints GUIDs it believes both
// sides replicate — so absence from the page carries no information and
// no reverse detection happens. It returns the local entries fresher
// than the peer's fingerprint (to push) and the GUIDs the peer holds
// fresher or that st lacks (to pull). wantMissing=false suppresses the
// pull list entirely — a draining node still serves its fresher copies
// but stops acquiring state.
func DiffDigests(st *store.Store, page []store.Digest, wantMissing bool) (newer []store.Entry, want []guid.GUID) {
	for _, d := range page {
		v, ok := st.Version(d.GUID)
		switch {
		case !ok || v < d.Version:
			if wantMissing {
				want = append(want, d.GUID)
			}
		case v > d.Version:
			if e, ok := st.Get(d.GUID); ok {
				newer = append(newer, e)
			}
		}
	}
	return newer, want
}

// DiffRange compares a *range-complete* digest page covering the
// keyspace interval (after, through] against st: the sender fingerprints
// everything it holds there, so a GUID st holds in the interval but the
// page lacks means the sender is missing it — reverse detection the
// filtered DiffDigests cannot do. Both sequences are walked in keyspace
// order as a sorted merge.
//
// max bounds the push list (max <= 0 means unbounded). When the bound
// is hit the merge stops and covered reports the last GUID that was
// fully compared; the caller resumes the sweep from it. A complete
// merge returns covered == through. The pull list needs no bound: it
// only ever names GUIDs from the page, so |want| <= |page|.
func DiffRange(st *store.Store, after, through guid.GUID, page []store.Digest, wantMissing bool, max int) (newer []store.Entry, want []guid.GUID, covered guid.GUID) {
	loc := localDigests(st, after, through)
	covered = after
	i, j := 0, 0
	for i < len(loc) || j < len(page) {
		var g guid.GUID
		switch {
		case j >= len(page) || (i < len(loc) && guid.Compare(loc[i].GUID, page[j].GUID) < 0):
			// Local-only: the sender lacks it — push.
			if max > 0 && len(newer) >= max {
				return newer, want, covered
			}
			g = loc[i].GUID
			if e, ok := st.Get(g); ok {
				newer = append(newer, e)
			}
			i++
		case i >= len(loc) || guid.Compare(page[j].GUID, loc[i].GUID) < 0:
			// Sender-only: st lacks it — pull.
			g = page[j].GUID
			if wantMissing {
				want = append(want, g)
			}
			j++
		default: // both hold it: §III-D2 version compare
			g = loc[i].GUID
			if loc[i].Version > page[j].Version {
				if max > 0 && len(newer) >= max {
					return newer, want, covered
				}
				if e, ok := st.Get(g); ok {
					newer = append(newer, e)
				}
			} else if loc[i].Version < page[j].Version && wantMissing {
				want = append(want, g)
			}
			i++
			j++
		}
		covered = g
	}
	return newer, want, through
}

// localDigests collects st's digests inside (after, through] in keyspace
// order by paging the shard cursors of every overlapping shard — shard
// ranges tile the keyspace in order, so per-shard order is global order.
func localDigests(st *store.Store, after, through guid.GUID) []store.Digest {
	var out []store.Digest
	page := make([]store.Digest, 0, 128)
	for i := 0; i < st.ShardCount(); i++ {
		sa, sth := st.ShardRange(i)
		if guid.Compare(sth, after) <= 0 {
			continue // shard entirely below the interval
		}
		if guid.Compare(sa, through) >= 0 {
			break // this and all later shards lie above it
		}
		cur := sa
		if guid.Compare(after, cur) > 0 {
			cur = after
		}
		for {
			var more bool
			page, more = st.ShardDigests(i, cur, cap(page), page[:0])
			for _, d := range page {
				if guid.Compare(d.GUID, through) > 0 {
					return out // everything after is above the interval too
				}
				out = append(out, d)
			}
			if !more || len(page) == 0 {
				break
			}
			cur = page[len(page)-1].GUID
		}
	}
	return out
}

// ApplyEntries installs pulled or pushed entries into st under
// freshest-wins and returns how many actually advanced the store (stale
// transfers are no-ops, not errors).
func ApplyEntries(st *store.Store, entries []store.Entry) (int, error) {
	applied := 0
	for _, e := range entries {
		ok, err := st.Put(e)
		if err != nil {
			return applied, err
		}
		if ok {
			applied++
		}
	}
	return applied, nil
}

// repairSet accumulates repair candidates for a target store, keeping
// only the freshest offer per GUID and — crucially — only offers
// strictly fresher than what the target already holds. That keeps its
// size proportional to the entries actually in need of repair, not to
// the total state scanned: a rejoin sweep over a large healthy cluster
// buffers almost nothing.
type repairSet struct {
	target *store.Store
	best   map[guid.GUID]store.Entry
}

func newRepairSet(target *store.Store) *repairSet {
	return &repairSet{target: target, best: make(map[guid.GUID]store.Entry)}
}

// Offer records e as a repair candidate unless the target (or an
// earlier offer) already holds that GUID at the same or higher version.
func (r *repairSet) Offer(e store.Entry) {
	if v, ok := r.target.Version(e.GUID); ok && v >= e.Version {
		return
	}
	if b, ok := r.best[e.GUID]; ok && b.Version >= e.Version {
		return
	}
	r.best[e.GUID] = e
}

// Len returns the number of buffered repair candidates.
func (r *repairSet) Len() int { return len(r.best) }

// Apply installs the buffered candidates and returns how many advanced
// the target. Concurrent writers may have outrun an offer; freshest-wins
// Put absorbs the race.
func (r *repairSet) Apply() (int, error) {
	return ApplyEntries(r.target, flatten(r.best))
}

func flatten(m map[guid.GUID]store.Entry) []store.Entry {
	out := make([]store.Entry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	return out
}

// hostedAt reports whether as is supposed to host e: one of the K
// global replica placements, or — with §III-C local replicas on — an
// attachment AS named in the entry itself.
func (s *System) hostedAt(e store.Entry, as int) (bool, error) {
	if s.localReplica {
		for _, na := range e.NAs {
			if na.AS == as {
				return true, nil
			}
		}
	}
	placements, err := s.res.Place(e.GUID)
	if err != nil {
		return false, err
	}
	for _, p := range placements {
		if p.AS == as {
			return true, nil
		}
	}
	return false, nil
}

// collectStale scans every peer store for mappings hosted at as that
// are fresher than as's copy, buffering them in a repairSet.
func (s *System) collectStale(as int) (*repairSet, error) {
	set := newRepairSet(s.storeAt(as))
	for other := range s.stores {
		if other == as {
			continue
		}
		st := s.loadStore(other)
		if st == nil {
			continue
		}
		var rangeErr error
		st.Range(func(e store.Entry) bool {
			hosted, err := s.hostedAt(e, as)
			if err != nil {
				rangeErr = err
				return false
			}
			if hosted {
				set.Offer(e)
			}
			return true
		})
		if rangeErr != nil {
			return nil, rangeErr
		}
	}
	return set, nil
}
