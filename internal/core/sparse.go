package core

import (
	"fmt"

	"dmap/internal/bucket"
	"dmap/internal/guid"
)

// SparseResolver is the §III-B variant of the resolver for address
// spaces where holes vastly outnumber announced segments (IPv6 and other
// future addressing schemes): instead of hash-and-rehash over raw
// addresses, placements go through the two-level bucket index, keeping
// resolution a purely local computation with the same K-replica
// semantics as the dense resolver.
type SparseResolver struct {
	hasher *guid.Hasher
	index  *bucket.Index
}

// NewSparseResolver builds a resolver over the shared hash family and a
// bucket index of the announced segments (see bucket.FromTable).
func NewSparseResolver(h *guid.Hasher, ix *bucket.Index) (*SparseResolver, error) {
	if h == nil {
		return nil, fmt.Errorf("core: nil hasher")
	}
	if ix == nil {
		return nil, fmt.Errorf("core: nil bucket index")
	}
	return &SparseResolver{hasher: h, index: ix}, nil
}

// K returns the replication factor.
func (r *SparseResolver) K() int { return r.hasher.K() }

// Index returns the underlying bucket index.
func (r *SparseResolver) Index() *bucket.Index { return r.index }

// PlaceReplica maps (g, replica) to its hosting AS through the bucket
// scheme. The returned Placement carries no address (sparse segments are
// opaque) and never uses the nearest fallback: bucket probing always
// terminates at an announced segment.
func (r *SparseResolver) PlaceReplica(g guid.GUID, replica int) (Placement, error) {
	seg, ok := r.index.Resolve(g, r.hasher, replica)
	if !ok {
		return Placement{}, ErrNoPrefixes
	}
	return Placement{AS: seg.AS, Replica: replica}, nil
}

// Place returns all K placements for g, in replica order.
func (r *SparseResolver) Place(g guid.GUID) ([]Placement, error) {
	out := make([]Placement, r.hasher.K())
	for i := range out {
		p, err := r.PlaceReplica(g, i)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}
