package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/store"
	"dmap/internal/topology"
)

// LatencyModel abstracts how long a request/response exchange between two
// ASs takes. topology.DistCache satisfies it; experiments substitute
// grouped Dijkstra vectors.
type LatencyModel interface {
	// RTT is the round-trip time between a requester in AS src and a
	// mapping server in AS dst (src == dst gives the intra-AS round
	// trip).
	RTT(src, dst int) topology.Micros
}

// SelectionPolicy chooses which of the K replicas a querier contacts
// first (§IV-B2a).
type SelectionPolicy int

// Selection policies.
const (
	// SelectLowestRTT assumes the querying node can estimate response
	// times and picks the minimum (the paper's primary assumption).
	SelectLowestRTT SelectionPolicy = iota + 1
	// SelectLeastHops uses BGP hop counts, "only partially available"
	// information that every AS does have; the paper reports similar
	// results with marginally increased latencies.
	SelectLeastHops
)

// SystemConfig assembles a DMap deployment.
type SystemConfig struct {
	// Resolver derives placements (shared hash family + prefix table).
	Resolver *Resolver
	// NumAS bounds the AS index space (stores are allocated lazily).
	NumAS int
	// LocalReplica enables the extra per-attachment-AS copy of §III-C.
	LocalReplica bool
}

// System is an in-memory DMap deployment: one mapping store per AS plus
// the protocol logic that moves entries between them. Insert, Update,
// Lookup, Delete and the read-only accessors are safe for concurrent
// use: per-AS stores are allocated lazily behind atomic pointers with
// striped locks, and each store serializes its own map. The BGP-churn
// protocol methods (WithdrawPrefix, AnnouncePrefix) mutate the shared
// prefix table and must still be serialized with respect to placement
// reads — drive churn from one goroutine, as the simulator does.
type System struct {
	res          *Resolver
	stores       []atomic.Pointer[store.Store]
	allocMu      [storeStripes]sync.Mutex // guards lazy store allocation only
	localReplica bool
}

// storeStripes is the number of allocation-lock stripes. Allocation is a
// one-time event per AS, so contention only matters during warm-up; 64
// stripes keep even a GOMAXPROCS-wide insert storm from serializing.
const storeStripes = 64

// NewSystem builds a deployment.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Resolver == nil {
		return nil, fmt.Errorf("core: nil resolver")
	}
	if cfg.NumAS <= 0 {
		return nil, fmt.Errorf("core: NumAS must be positive, got %d", cfg.NumAS)
	}
	return &System{
		res:          cfg.Resolver,
		stores:       make([]atomic.Pointer[store.Store], cfg.NumAS),
		localReplica: cfg.LocalReplica,
	}, nil
}

// Resolver returns the placement resolver.
func (s *System) Resolver() *Resolver { return s.res }

// NumAS returns the AS index space size.
func (s *System) NumAS() int { return len(s.stores) }

// loadStore returns the mapping store of as, or nil if none has been
// allocated yet. Safe for concurrent use.
func (s *System) loadStore(as int) *store.Store {
	return s.stores[as].Load()
}

// storeAt returns (allocating if needed) the mapping store of as. The
// fast path is one atomic load; allocation double-checks under the AS's
// stripe lock so concurrent callers agree on a single store.
func (s *System) storeAt(as int) *store.Store {
	if st := s.stores[as].Load(); st != nil {
		return st
	}
	mu := &s.allocMu[as%storeStripes]
	mu.Lock()
	defer mu.Unlock()
	if st := s.stores[as].Load(); st != nil {
		return st
	}
	st := store.New()
	s.stores[as].Store(st)
	return st
}

// Store exposes the mapping store of as (allocating it if needed), for
// event-driven deployments that deliver protocol messages themselves.
func (s *System) Store(as int) (*store.Store, error) {
	if as < 0 || as >= len(s.stores) {
		return nil, fmt.Errorf("core: AS %d out of range [0,%d)", as, len(s.stores))
	}
	return s.storeAt(as), nil
}

// LocalReplicaEnabled reports whether §III-C local replication is on.
func (s *System) LocalReplicaEnabled() bool { return s.localReplica }

// StoreLen returns the number of mappings hosted at as (0 if none).
func (s *System) StoreLen(as int) int {
	st := s.loadStore(as)
	if st == nil {
		return 0
	}
	return st.Len()
}

// HostedCounts returns the per-AS hosted mapping counts (for NLR).
func (s *System) HostedCounts() map[int]int {
	out := make(map[int]int)
	for as := range s.stores {
		if st := s.loadStore(as); st != nil && st.Len() > 0 {
			out[as] = st.Len()
		}
	}
	return out
}

// Insert stores e's mapping at its K global replicas, plus a local copy
// at srcAS when local replication is on (§III-C). It returns the global
// placements. Insert and Update share semantics: the store keeps the
// highest version (§III-D2), so a reordered stale update is a no-op.
func (s *System) Insert(e store.Entry, srcAS int) ([]Placement, error) {
	if srcAS < 0 || srcAS >= len(s.stores) {
		return nil, fmt.Errorf("core: srcAS %d out of range [0,%d)", srcAS, len(s.stores))
	}
	placements, err := s.res.Place(e.GUID)
	if err != nil {
		return nil, err
	}
	for _, p := range placements {
		if _, err := s.storeAt(p.AS).Put(e); err != nil {
			return nil, fmt.Errorf("core: insert at AS %d: %w", p.AS, err)
		}
	}
	if s.localReplica {
		if _, err := s.storeAt(srcAS).Put(e); err != nil {
			return nil, fmt.Errorf("core: local insert at AS %d: %w", srcAS, err)
		}
	}
	return placements, nil
}

// Update is Insert with move semantics: the entry's version must exceed
// the stored one for the new locators to take effect everywhere.
func (s *System) Update(e store.Entry, srcAS int) ([]Placement, error) {
	return s.Insert(e, srcAS)
}

// Delete removes g's mapping from its K replicas (and the local copy at
// srcAS), reporting how many copies existed.
func (s *System) Delete(g guid.GUID, srcAS int) (int, error) {
	placements, err := s.res.Place(g)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, p := range placements {
		if st := s.loadStore(p.AS); st != nil && st.Delete(g) {
			removed++
		}
	}
	if s.localReplica && srcAS >= 0 && srcAS < len(s.stores) {
		if st := s.loadStore(srcAS); st != nil && st.Delete(g) {
			removed++
		}
	}
	return removed, nil
}

// UpdateLatency is the paper's update-cost metric: updates go to all K
// replicas in parallel, so the latency is the largest RTT among them
// (§III-A).
func (s *System) UpdateLatency(g guid.GUID, srcAS int, lm LatencyModel) (topology.Micros, error) {
	placements, err := s.res.Place(g)
	if err != nil {
		return 0, err
	}
	var max topology.Micros
	for _, p := range placements {
		if rtt := lm.RTT(srcAS, p.AS); rtt > max {
			max = rtt
		}
	}
	return max, nil
}

// LookupOptions tunes a lookup.
type LookupOptions struct {
	// Selection picks the replica-ordering policy; zero value means
	// SelectLowestRTT.
	Selection SelectionPolicy
	// Hops supplies src-relative AS hop counts for SelectLeastHops.
	Hops []int32
	// Miss marks ASs that answer "GUID missing" despite being a computed
	// replica (BGP churn inconsistency, §III-D1 / Fig. 5). A missed
	// attempt costs its full RTT before the querier tries the next
	// replica.
	Miss func(as int) bool
	// Crashed marks ASs that do not answer at all (router failure,
	// §III-D3). A crashed attempt costs Timeout.
	Crashed func(as int) bool
	// Timeout is the querier's retransmission timeout for crashed
	// replicas; zero selects DefaultTimeout.
	Timeout topology.Micros
}

// DefaultTimeout is the querier's timeout for unresponsive replicas.
const DefaultTimeout = topology.Micros(2_000_000) // 2 s

// LookupOutcome reports how a lookup went.
type LookupOutcome struct {
	// RTT is the total time until the answer arrived, including failed
	// attempts and timeouts.
	RTT topology.Micros
	// ServedBy is the AS that answered.
	ServedBy int
	// UsedLocal reports that the local (attachment-AS) replica answered
	// first.
	UsedLocal bool
	// Attempts counts contacted replicas (1 = first try).
	Attempts int
}

// ErrNotFound reports that no replica holds a mapping for the GUID.
var ErrNotFound = fmt.Errorf("core: GUID not found")

// Lookup resolves g from a requester in srcAS. Per §III-C the querier
// sends a local and a global lookup simultaneously; the effective latency
// is whichever copy answers first. Global replicas are tried in
// policy order; replicas marked Miss cost an RTT, crashed ones a timeout.
func (s *System) Lookup(g guid.GUID, srcAS int, lm LatencyModel, opts LookupOptions) (store.Entry, LookupOutcome, error) {
	if srcAS < 0 || srcAS >= len(s.stores) {
		return store.Entry{}, LookupOutcome{}, fmt.Errorf("core: srcAS %d out of range [0,%d)", srcAS, len(s.stores))
	}
	placements, err := s.res.Place(g)
	if err != nil {
		return store.Entry{}, LookupOutcome{}, err
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}

	// Order replicas by the selection policy.
	type cand struct {
		as   int
		rtt  topology.Micros
		cost int64
	}
	cands := make([]cand, 0, len(placements))
	for _, p := range placements {
		c := cand{as: p.AS, rtt: lm.RTT(srcAS, p.AS)}
		switch opts.Selection {
		case SelectLeastHops:
			if opts.Hops == nil {
				return store.Entry{}, LookupOutcome{}, fmt.Errorf("core: SelectLeastHops requires Hops")
			}
			c.cost = int64(opts.Hops[p.AS])
		default:
			c.cost = int64(c.rtt)
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].as < cands[j].as
	})

	// The parallel local lookup (if the requester's AS holds a copy).
	localRTT := topology.Micros(-1)
	var localEntry store.Entry
	if s.localReplica {
		if st := s.loadStore(srcAS); st != nil {
			if e, ok := st.Get(g); ok {
				localRTT = lm.RTT(srcAS, srcAS)
				localEntry = e
			}
		}
	}

	var elapsed topology.Micros
	attempts := 0
	for _, c := range cands {
		attempts++
		switch {
		case opts.Crashed != nil && opts.Crashed(c.as):
			elapsed += timeout
		case opts.Miss != nil && opts.Miss(c.as):
			elapsed += c.rtt
		default:
			e, ok := func() (store.Entry, bool) {
				st := s.loadStore(c.as)
				if st == nil {
					return store.Entry{}, false
				}
				return st.Get(g)
			}()
			if !ok {
				// Genuine miss (e.g. never inserted here): costs an RTT
				// like a churn miss.
				elapsed += c.rtt
				continue
			}
			total := elapsed + c.rtt
			if localRTT >= 0 && localRTT < total {
				return localEntry, LookupOutcome{RTT: localRTT, ServedBy: srcAS, UsedLocal: true, Attempts: attempts}, nil
			}
			return e, LookupOutcome{RTT: total, ServedBy: c.as, Attempts: attempts}, nil
		}
	}
	if localRTT >= 0 {
		return localEntry, LookupOutcome{RTT: localRTT, ServedBy: srcAS, UsedLocal: true, Attempts: attempts}, nil
	}
	return store.Entry{}, LookupOutcome{RTT: elapsed, Attempts: attempts}, ErrNotFound
}

// ConsistencyReport summarizes an audit of the deployment's invariants.
type ConsistencyReport struct {
	// Mappings is the number of distinct GUIDs audited.
	Mappings int
	// MissingReplicas counts (GUID, replica) pairs whose computed
	// hosting AS does not hold the mapping.
	MissingReplicas int
	// VersionSkews counts GUIDs whose replicas disagree on the version
	// (transiently normal during an update; permanently a bug).
	VersionSkews int
	// Strays counts stored entries at ASs that are neither a computed
	// replica nor a local-replica attachment for the GUID.
	Strays int
}

// Ok reports a fully consistent deployment.
func (r ConsistencyReport) Ok() bool {
	return r.MissingReplicas == 0 && r.VersionSkews == 0 && r.Strays == 0
}

// String formats the report.
func (r ConsistencyReport) String() string {
	return fmt.Sprintf("mappings=%d missingReplicas=%d versionSkews=%d strays=%d",
		r.Mappings, r.MissingReplicas, r.VersionSkews, r.Strays)
}

// VerifyConsistency audits the whole deployment against the placement
// function: every GUID stored anywhere must be present at each of its K
// computed replicas with one agreed version, and no AS may hold a
// mapping it should not (modulo local replicas, which may live at any
// attachment AS listed in the entry's NAs). Quiesce the system first;
// the audit reads every store.
func (s *System) VerifyConsistency() (ConsistencyReport, error) {
	var rep ConsistencyReport

	// Collect the union of stored GUIDs and who holds them.
	holders := make(map[guid.GUID]map[int]uint64) // guid → AS → version
	for as := range s.stores {
		st := s.loadStore(as)
		if st == nil {
			continue
		}
		as := as
		st.Range(func(e store.Entry) bool {
			m, ok := holders[e.GUID]
			if !ok {
				m = make(map[int]uint64, s.res.K()+1)
				holders[e.GUID] = m
			}
			m[as] = e.Version
			return true
		})
	}

	for g, byAS := range holders {
		rep.Mappings++
		placements, err := s.res.Place(g)
		if err != nil {
			return rep, err
		}
		expected := make(map[int]bool, len(placements))
		for _, p := range placements {
			expected[p.AS] = true
			if _, ok := byAS[p.AS]; !ok {
				rep.MissingReplicas++
			}
		}
		// Local replicas may live at any AS the entry lists as an
		// attachment.
		if s.localReplica {
			for as := range byAS {
				var e store.Entry
				if st := s.loadStore(as); st != nil {
					e, _ = st.Get(g)
				}
				for _, na := range e.NAs {
					expected[na.AS] = true
				}
			}
		}
		versions := make(map[uint64]bool)
		for as, v := range byAS {
			versions[v] = true
			if !expected[as] {
				rep.Strays++
			}
		}
		if len(versions) > 1 {
			rep.VersionSkews++
		}
	}
	return rep, nil
}

// WithdrawPrefix implements the §III-D1 withdrawal protocol: before the
// prefix disappears from the table, the withdrawing AS extracts every
// mapping it hosts whose placement address lies in p and pushes each to
// its deputy (the AS Algorithm 1 reaches once p is gone). Queries issued
// afterwards hit the hole, follow the same rehash chain, and find the
// deputy naturally. It returns the number of migrated mappings.
func (s *System) WithdrawPrefix(p netaddr.Prefix, owner int) (int, error) {
	if owner < 0 || owner >= len(s.stores) {
		return 0, fmt.Errorf("core: owner %d out of range", owner)
	}

	var orphans []store.Entry
	if st := s.loadStore(owner); st != nil {
		orphans = st.Extract(func(g guid.GUID) bool {
			// The mapping is orphaned if one of its placements selected
			// this AS via an address inside p.
			for k := 0; k < s.res.K(); k++ {
				pl, err := s.res.PlaceReplica(g, k)
				if err != nil {
					return false
				}
				if pl.AS == owner && p.Contains(pl.Addr) {
					return true
				}
			}
			return false
		})
	}

	if !s.res.table.Withdraw(p) {
		return 0, fmt.Errorf("core: prefix %v not announced", p)
	}

	// With the prefix gone, Algorithm 1 lands each orphan on its deputy;
	// re-placing all K replicas is idempotent for the unaffected ones
	// (the store rejects non-newer versions it already holds).
	migrated := 0
	for _, e := range orphans {
		for k := 0; k < s.res.K(); k++ {
			pl, err := s.res.PlaceReplica(e.GUID, k)
			if err != nil {
				return migrated, err
			}
			if _, err := s.storeAt(pl.AS).Put(e); err != nil {
				return migrated, err
			}
		}
		migrated++
	}
	return migrated, nil
}

// AnnouncePrefix implements the §III-D1 announcement protocol. The new
// prefix may capture GUIDs whose mappings live at a deputy chosen when
// these addresses were holes; those become orphans. DMap recovers lazily:
// the first query that reaches the announcing AS and misses triggers a
// GUID migration message to the deputy (found by running Algorithm 1 as
// if the new prefix were still a hole), relocating the mapping. This
// method performs the announcement; RepairMiss performs the lazy pull.
func (s *System) AnnouncePrefix(p netaddr.Prefix, owner int) error {
	if owner < 0 || owner >= len(s.stores) {
		return fmt.Errorf("core: owner %d out of range", owner)
	}
	return s.res.table.Announce(p, owner)
}

// RepairMiss is the lazy migration triggered by a "GUID missing" reply
// from a freshly announcing AS: locate the old deputy by excluding the
// new prefix from Algorithm 1, pull the mapping from it, and store it at
// the announcing AS. It reports whether a mapping was recovered.
func (s *System) RepairMiss(g guid.GUID, announced netaddr.Prefix, owner int) (bool, error) {
	exclude := func(a netaddr.Addr) bool { return announced.Contains(a) }
	for k := 0; k < s.res.K(); k++ {
		pl, err := s.res.PlaceReplica(g, k)
		if err != nil {
			return false, err
		}
		if pl.AS != owner || !announced.Contains(pl.Addr) {
			continue // this replica is not affected by the announcement
		}
		deputy, err := s.res.PlaceExcluding(g, k, exclude)
		if err != nil {
			return false, err
		}
		if st := s.loadStore(deputy.AS); st != nil {
			if e, ok := st.Get(g); ok {
				if _, err := s.storeAt(owner).Put(e); err != nil {
					return false, err
				}
				st.Delete(g)
				return true, nil
			}
		}
	}
	return false, nil
}

// ReconcileAS implements the rejoin half of §III-D1: a node that
// restarts from its durable store may have missed updates that its
// deputies (the other replicas of each GUID it hosts) absorbed while it
// was down. The restarted AS scans every peer holding a GUID placed at
// it, compares §III-D2 version numbers, and installs the highest —
// highest-seq wins, so after reconciliation the node cannot serve a
// stale read for any mapping it hosts. It returns the number of
// mappings that were refreshed (pulled at a higher version than the
// local copy, or missing locally).
//
// The candidate buffer holds only entries strictly fresher than the
// local copy (repairSet in antientropy.go), so a rejoin against a
// mostly-healthy cluster stays O(stale mappings), not O(cluster state).
func (s *System) ReconcileAS(as int) (int, error) {
	if as < 0 || as >= len(s.stores) {
		return 0, fmt.Errorf("core: AS %d out of range [0,%d)", as, len(s.stores))
	}
	set, err := s.collectStale(as)
	if err != nil {
		return 0, err
	}
	return set.Apply()
}
