package core

import (
	"math/rand"
	"testing"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
)

// Property-based checks of Algorithm 1: for random GUID populations and
// random announce/withdraw churn, placements must always land on
// announced prefixes with the matching AS, be deterministic for a fixed
// table, and be independent per replica index (a K-replica placement is
// a prefix of any larger-K placement).

// randomTable announces n random disjoint-ish prefixes and returns the
// churn pool of spare prefixes for later announcements.
func randomTable(t *testing.T, rng *rand.Rand, n int) (*prefixtable.Table, []netaddr.Prefix) {
	t.Helper()
	table := prefixtable.New()
	var announced []netaddr.Prefix
	for len(announced) < n {
		bits := 8 + rng.Intn(13) // /8 .. /20
		addr := netaddr.Addr(rng.Uint32())
		p, err := netaddr.NewPrefix(addr, bits)
		if err != nil {
			t.Fatal(err)
		}
		if err := table.Announce(p, len(announced)+1); err != nil {
			continue // overlap with an existing announcement: skip
		}
		announced = append(announced, p)
	}
	// A spare pool for churn re-announcements.
	var spares []netaddr.Prefix
	for len(spares) < n/2 {
		bits := 8 + rng.Intn(13)
		p, err := netaddr.NewPrefix(netaddr.Addr(rng.Uint32()), bits)
		if err != nil {
			t.Fatal(err)
		}
		spares = append(spares, p)
	}
	return table, spares
}

// checkPlacements asserts the core soundness property for every GUID:
// the selected address is actually announced and owned by the reported
// AS — including the nearest-deputy fallback, whose closest address must
// itself resolve to the deputy.
func checkPlacements(t *testing.T, r *Resolver, guids []guid.GUID) {
	t.Helper()
	for _, g := range guids {
		ps, err := r.Place(g)
		if err != nil {
			t.Fatalf("place %s: %v", g.Short(), err)
		}
		for _, p := range ps {
			if !p.UsedNearest {
				// Direct (re)hash hit: the AS is the LPM owner of the
				// hashed address.
				e, ok := r.Table().Lookup(p.Addr)
				if !ok {
					t.Fatalf("guid %s replica %d: placement addr %s not announced",
						g.Short(), p.Replica, p.Addr)
				}
				if e.AS != p.AS {
					t.Fatalf("guid %s replica %d: placement AS %d but %s is announced by AS %d",
						g.Short(), p.Replica, p.AS, p.Addr, e.AS)
				}
				continue
			}
			// Deputy fallback: the address is the closest point of the
			// nearest announced prefix, which must belong to the deputy.
			// (LPM at that point may name a nested more-specific of
			// another AS, so containment — not Lookup — is the
			// invariant.)
			if p.Rehashes != r.MaxRehash() {
				t.Fatalf("guid %s replica %d: deputy fallback after %d < M rehashes",
					g.Short(), p.Replica, p.Rehashes)
			}
			owned := false
			for _, e := range r.Table().Entries() {
				if e.AS == p.AS && e.Prefix.Contains(p.Addr) {
					owned = true
					break
				}
			}
			if !owned {
				t.Fatalf("guid %s replica %d: deputy AS %d announces no prefix containing %s",
					g.Short(), p.Replica, p.AS, p.Addr)
			}
		}
	}
}

func TestPlacementSoundUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	table, spares := randomTable(t, rng, 60)
	r, err := NewResolver(guid.MustHasher(5, 0), table, 0)
	if err != nil {
		t.Fatal(err)
	}

	guids := make([]guid.GUID, 200)
	for i := range guids {
		guids[i] = guid.FromUint64(rng.Uint64())
	}

	// Interleave placement checks with random announce/withdraw churn.
	// After every batch of events the invariant must still hold for the
	// whole population against the *current* table.
	live := append([]netaddr.Prefix(nil), spares...)
	for round := 0; round < 15; round++ {
		checkPlacements(t, r, guids)
		for ev := 0; ev < 5; ev++ {
			if rng.Intn(2) == 0 && len(live) > 0 {
				i := rng.Intn(len(live))
				p := live[i]
				if err := table.Announce(p, 1000+round*10+ev); err == nil {
					live = append(live[:i], live[i+1:]...)
				}
			} else if es := table.Entries(); len(es) > 1 {
				victim := es[rng.Intn(len(es))].Prefix
				if table.Withdraw(victim) {
					live = append(live, victim)
				}
			}
		}
	}
	checkPlacements(t, r, guids)
}

// For a fixed table, placement is a pure function of the GUID: repeated
// resolution — and resolution through an independently constructed
// resolver over the same hash family — must agree exactly.
func TestPlacementDeterministicForFixedTable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	table, _ := randomTable(t, rng, 40)
	r1, err := NewResolver(guid.MustHasher(3, 9), table, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewResolver(guid.MustHasher(3, 9), table, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		g := guid.FromUint64(rng.Uint64())
		a, err := r1.Place(g)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r1.Place(g)
		if err != nil {
			t.Fatal(err)
		}
		c, err := r2.Place(g)
		if err != nil {
			t.Fatal(err)
		}
		for k := range a {
			if a[k] != b[k] || a[k] != c[k] {
				t.Fatalf("guid %s replica %d: placements diverge: %+v / %+v / %+v",
					g.Short(), k, a[k], b[k], c[k])
			}
		}
	}
}

// Replica hash functions are domain-separated on the replica index, so
// the K=2 placement of a GUID is exactly the first two entries of its
// K=5 placement: growing K never reshuffles existing replicas.
func TestReplicaPlacementsExtend(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	table, _ := randomTable(t, rng, 40)
	small, err := NewResolver(guid.MustHasher(2, 0), table, 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewResolver(guid.MustHasher(5, 0), table, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		g := guid.FromUint64(rng.Uint64())
		ps, err := small.Place(g)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := big.Place(g)
		if err != nil {
			t.Fatal(err)
		}
		for k := range ps {
			if ps[k] != pb[k] {
				t.Fatalf("guid %s replica %d: K=2 placement %+v != K=5 prefix %+v",
					g.Short(), k, ps[k], pb[k])
			}
		}
	}
}

// Distinct replicas of one GUID should spread out: across a random
// population, the rate at which replica 0 and replica 1 land on the same
// AS must stay near the birthday estimate implied by the table's
// per-AS announced share (Σ share² under independent uniform hashing).
func TestReplicaSpreadMatchesShare(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	table, _ := randomTable(t, rng, 80)
	r, err := NewResolver(guid.MustHasher(2, 0), table, 0)
	if err != nil {
		t.Fatal(err)
	}
	expected := 0.0
	for _, share := range table.ShareByAS() {
		expected += share * share
	}
	const n = 5000
	same := 0
	for i := 0; i < n; i++ {
		ps, err := r.Place(guid.FromUint64(uint64(i) + 1))
		if err != nil {
			t.Fatal(err)
		}
		if ps[0].AS == ps[1].AS {
			same++
		}
	}
	got := float64(same) / n
	// Rehashing and deputy fallback skew slightly toward big prefixes,
	// so allow a generous band around the independence estimate.
	if got > 4*expected+0.02 {
		t.Errorf("replica collision rate %.4f far above independence estimate %.4f", got, expected)
	}
}
