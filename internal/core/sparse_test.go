package core

import (
	"testing"

	"dmap/internal/bucket"
	"dmap/internal/guid"
)

func sparseIndex(t *testing.T, numSegments, numBuckets int) *bucket.Index {
	t.Helper()
	entries := make([]bucket.TableEntry, numSegments)
	for i := range entries {
		entries[i] = bucket.TableEntry{
			Addr: uint64(i) * 7919,
			Bits: 48,
			AS:   i % 50,
		}
	}
	ix, err := bucket.FromTable(entries, numBuckets)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestNewSparseResolverValidation(t *testing.T) {
	h := guid.MustHasher(2, 0)
	ix := sparseIndex(t, 10, 8)
	if _, err := NewSparseResolver(nil, ix); err == nil {
		t.Error("nil hasher should fail")
	}
	if _, err := NewSparseResolver(h, nil); err == nil {
		t.Error("nil index should fail")
	}
	r, err := NewSparseResolver(h, ix)
	if err != nil {
		t.Fatal(err)
	}
	if r.K() != 2 || r.Index() != ix {
		t.Error("accessors")
	}
}

func TestSparsePlaceEmptyIndex(t *testing.T) {
	ix, err := bucket.NewIndex(8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSparseResolver(guid.MustHasher(1, 0), ix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Place(guid.New("g")); err != ErrNoPrefixes {
		t.Errorf("err = %v, want ErrNoPrefixes", err)
	}
}

func TestSparsePlaceDeterministicAndValid(t *testing.T) {
	r, err := NewSparseResolver(guid.MustHasher(5, 0), sparseIndex(t, 500, 128))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		g := guid.FromUint64(uint64(i) + 1)
		p1, err := r.Place(g)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := r.Place(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(p1) != 5 {
			t.Fatalf("placements = %d", len(p1))
		}
		for k := range p1 {
			if p1[k] != p2[k] {
				t.Fatal("not deterministic")
			}
			if p1[k].AS < 0 || p1[k].AS >= 50 {
				t.Fatalf("AS %d out of range", p1[k].AS)
			}
			if p1[k].Replica != k {
				t.Errorf("replica field %d", p1[k].Replica)
			}
			if p1[k].UsedNearest {
				t.Error("sparse placement never uses nearest fallback")
			}
		}
	}
}

func TestSparsePlaceBalanced(t *testing.T) {
	// Per-AS load must track the number of segments each AS announces
	// (uniform here: 10 segments per AS).
	r, err := NewSparseResolver(guid.MustHasher(1, 0), sparseIndex(t, 500, 128))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 50)
	const n = 50000
	for i := 0; i < n; i++ {
		p, err := r.PlaceReplica(guid.FromUint64(uint64(i)+1), 0)
		if err != nil {
			t.Fatal(err)
		}
		counts[p.AS]++
	}
	avg := n / 50
	for as, c := range counts {
		if c < avg/2 || c > avg*2 {
			t.Errorf("AS %d load %d, want within 2x of %d", as, c, avg)
		}
	}
}
