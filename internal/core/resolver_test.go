package core

import (
	"math"
	"testing"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
)

// halfTable announces 0.0.0.0/1 (AS 0) so exactly half the space is
// announced: hole probability 1/2 per hash.
func halfTable(t *testing.T) *prefixtable.Table {
	t.Helper()
	tbl := prefixtable.New()
	p, err := netaddr.NewPrefix(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Announce(p, 0); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func genTable(t *testing.T, seed int64) *prefixtable.Table {
	t.Helper()
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS:             500,
		NumPrefixes:       5000,
		AnnouncedFraction: 0.52,
		Seed:              seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewResolverValidation(t *testing.T) {
	h := guid.MustHasher(2, 0)
	tbl := prefixtable.New()
	if _, err := NewResolver(nil, tbl, 0); err == nil {
		t.Error("nil hasher should fail")
	}
	if _, err := NewResolver(h, nil, 0); err == nil {
		t.Error("nil table should fail")
	}
	r, err := NewResolver(h, tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxRehash() != DefaultMaxRehash {
		t.Errorf("MaxRehash = %d, want default %d", r.MaxRehash(), DefaultMaxRehash)
	}
	if r.K() != 2 {
		t.Errorf("K = %d", r.K())
	}
}

func TestPlaceEmptyTable(t *testing.T) {
	r, err := NewResolver(guid.MustHasher(1, 0), prefixtable.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Place(guid.New("g")); err != ErrNoPrefixes {
		t.Errorf("Place on empty table err = %v, want ErrNoPrefixes", err)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	tbl := genTable(t, 1)
	r, err := NewResolver(guid.MustHasher(5, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := guid.New("phone-X")
	p1, err := r.Place(g)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Place(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 5 {
		t.Fatalf("placements = %d, want 5", len(p1))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("placement %d not deterministic: %+v vs %+v", i, p1[i], p2[i])
		}
		if p1[i].Replica != i {
			t.Errorf("placement %d replica field = %d", i, p1[i].Replica)
		}
	}
}

func TestPlacementAddressOwnedByAS(t *testing.T) {
	tbl := genTable(t, 2)
	r, err := NewResolver(guid.MustHasher(5, 7), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		placements, err := r.Place(guid.FromUint64(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range placements {
			e, ok := tbl.Lookup(p.Addr)
			if !ok {
				t.Fatalf("placement address %v not announced", p.Addr)
			}
			if e.AS != p.AS {
				t.Fatalf("placement AS %d but %v is announced by %d", p.AS, p.Addr, e.AS)
			}
		}
	}
}

func TestPlaceRehashOnHole(t *testing.T) {
	// Announce only the lower half: any GUID whose first hash has the top
	// bit set must rehash at least once, and the final address must land
	// in the announced half (or use the nearest fallback).
	tbl := halfTable(t)
	h := guid.MustHasher(1, 0)
	r, err := NewResolver(h, tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	sawRehash := false
	for i := 0; i < 200; i++ {
		g := guid.FromUint64(uint64(i))
		p, err := r.PlaceReplica(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		first := netaddr.Addr(h.Hash(g, 0))
		if first>>31 == 1 && p.Rehashes == 0 {
			t.Fatalf("GUID %d: first hash %v is a hole but no rehash recorded", i, first)
		}
		if p.Rehashes > 0 {
			sawRehash = true
		}
		if !p.UsedNearest && p.Addr>>31 != 0 {
			t.Fatalf("GUID %d placed at unannounced %v", i, p.Addr)
		}
		if p.AS != 0 {
			t.Fatalf("GUID %d placed at AS %d, only AS 0 exists", i, p.AS)
		}
	}
	if !sawRehash {
		t.Error("expected some rehashes with 50% holes")
	}
}

func TestPlaceNearestFallback(t *testing.T) {
	// M=1 and a tiny announced sliver: almost every GUID exhausts
	// rehashes and must use the nearest-prefix deputy.
	tbl := prefixtable.New()
	p, err := netaddr.NewPrefix(netaddr.AddrFromOctets(10, 0, 0, 0), 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Announce(p, 3); err != nil {
		t.Fatal(err)
	}
	r, err := NewResolver(guid.MustHasher(1, 0), tbl, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := r.PlaceReplica(guid.New("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.UsedNearest {
		t.Error("expected nearest fallback")
	}
	if pl.AS != 3 {
		t.Errorf("deputy AS = %d, want 3", pl.AS)
	}
	if !p.Contains(pl.Addr) {
		t.Errorf("deputy address %v outside the only prefix", pl.Addr)
	}
	if pl.Rehashes != 1 {
		t.Errorf("Rehashes = %d, want M=1", pl.Rehashes)
	}
}

func TestMeasureRehashMatchesTheory(t *testing.T) {
	// With exactly half the space announced, P(depth = d) = 2^-(d+1) and
	// P(fallback) = 2^-M (the paper's 0.45^M with hole fraction 0.45).
	tbl := halfTable(t)
	r, err := NewResolver(guid.MustHasher(2, 0), tbl, 10)
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.MeasureRehash(20000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 40000 {
		t.Fatalf("Samples = %d", st.Samples)
	}
	for d := 0; d < 4; d++ {
		got := float64(st.DepthCounts[d]) / float64(st.Samples)
		want := math.Pow(0.5, float64(d+1))
		if math.Abs(got-want) > 0.01 {
			t.Errorf("depth %d rate = %.4f, want ≈ %.4f", d, got, want)
		}
	}
	if rate := st.FallbackRate(); rate > 0.005 {
		t.Errorf("fallback rate = %.4f, want ≈ 2^-10 ≈ 0.001", rate)
	}
}

func TestFallbackRateEmpty(t *testing.T) {
	if (RehashStats{}).FallbackRate() != 0 {
		t.Error("empty stats fallback rate should be 0")
	}
}

func TestPlaceExcluding(t *testing.T) {
	tbl := genTable(t, 3)
	r, err := NewResolver(guid.MustHasher(1, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := guid.New("migrating")
	orig, err := r.PlaceReplica(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Excluding the original placement address must move the replica.
	entry, ok := tbl.Lookup(orig.Addr)
	if !ok {
		t.Fatal("placement not announced")
	}
	moved, err := r.PlaceExcluding(g, 0, func(a netaddr.Addr) bool {
		return entry.Prefix.Contains(a)
	})
	if err != nil {
		t.Fatal(err)
	}
	if entry.Prefix.Contains(moved.Addr) {
		t.Errorf("excluded placement still landed inside %v", entry.Prefix)
	}
	// Excluding nothing reproduces the original placement.
	same, err := r.PlaceExcluding(g, 0, func(netaddr.Addr) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if same != orig {
		t.Errorf("PlaceExcluding(no-op) = %+v, want %+v", same, orig)
	}
}

func TestPlaceByASNumber(t *testing.T) {
	r, err := NewResolver(guid.MustHasher(3, 0), prefixtable.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.PlaceByASNumber(guid.New("g"), 0, 0); err == nil {
		t.Error("numAS=0 should fail")
	}
	counts := make([]int, 10)
	for i := 0; i < 5000; i++ {
		p, err := r.PlaceByASNumber(guid.FromUint64(uint64(i)), 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		counts[p.AS]++
	}
	for as, c := range counts {
		if c < 300 || c > 700 {
			t.Errorf("AS %d count %d, want ≈500 (uniform)", as, c)
		}
	}
}

func TestLoadBalanceAcrossASs(t *testing.T) {
	// Placement counts per AS must track announced share: the core NLR
	// property of Fig. 6, asserted here at package level.
	tbl := genTable(t, 4)
	r, err := NewResolver(guid.MustHasher(5, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	hosted := make(map[int]int)
	const n = 3000
	for i := 0; i < n; i++ {
		placements, err := r.Place(guid.FromUint64(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range placements {
			hosted[p.AS]++
		}
	}
	shares := tbl.ShareByAS()
	announced := tbl.AnnouncedFraction()
	// For the biggest ASs (enough samples), NLR must be near 1.
	for as, share := range shares {
		normShare := share / announced
		if normShare < 0.05 {
			continue
		}
		nlr := (float64(hosted[as]) / float64(n*5)) / normShare
		if nlr < 0.7 || nlr > 1.3 {
			t.Errorf("AS %d: NLR = %.2f (share %.3f), want ≈1", as, nlr, normShare)
		}
	}
}
