package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestSystemConcurrentHammer drives Insert/Update/Lookup/Delete and the
// read-side inspectors from many goroutines at once. Run under -race it
// exercises the striped lazy store allocation and the atomic store
// loads; afterwards the surviving GUIDs must still pass the consistency
// audit.
func TestSystemConcurrentHammer(t *testing.T) {
	sys := newTestSystem(t, 3, true)

	const (
		goroutines = 8
		guidsPer   = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for gr := 0; gr < goroutines; gr++ {
		gr := gr
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < guidsPer; i++ {
				// The source AS is the entry's attachment AS, so the
				// §III-C local copy lands where the audit expects it.
				srcAS := gr*guidsPer + i
				e := testEntry(fmt.Sprintf("hammer-%d-%d", gr, i), 1, srcAS)
				if _, err := sys.Insert(e, srcAS); err != nil {
					errs <- err
					return
				}
				if _, _, err := sys.Lookup(e.GUID, srcAS, flatLatency{}, LookupOptions{}); err != nil {
					errs <- err
					return
				}
				e.Version = 2
				if _, err := sys.Update(e, srcAS); err != nil {
					errs <- err
					return
				}
				// Read-side inspectors race against writers on other
				// goroutines' stores.
				sys.StoreLen(srcAS)
				sys.HostedCounts()
				// Every fourth GUID is deleted again, so the audit also
				// sees stores that shrank concurrently.
				if i%4 == 3 {
					if _, err := sys.Delete(e.GUID, srcAS); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	rep, err := sys.VerifyConsistency()
	if err != nil {
		t.Fatal(err)
	}
	wantGUIDs := goroutines * guidsPer * 3 / 4
	if rep.Mappings != wantGUIDs {
		t.Errorf("audit saw %d GUIDs, want %d", rep.Mappings, wantGUIDs)
	}
	if !rep.Ok() {
		t.Errorf("consistency audit failed after concurrent hammer: %+v", rep)
	}
}

// TestSystemConcurrentSameGUID hammers one GUID from every goroutine:
// the striped allocation path and per-store locking must serialize
// version-checked updates without losing the entry.
func TestSystemConcurrentSameGUID(t *testing.T) {
	sys := newTestSystem(t, 3, false)
	e := testEntry("contended", 1, 42)
	if _, err := sys.Insert(e, 7); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for gr := 0; gr < goroutines; gr++ {
		gr := gr
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := uint64(2); v < 20; v++ {
				up := e
				up.Version = v
				// Stale versions are rejected by the store; racing
				// writers only ever move the version forward.
				_, _ = sys.Update(up, gr%500)
				if _, _, err := sys.Lookup(e.GUID, gr%500, flatLatency{}, LookupOptions{}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	got, _, err := sys.Lookup(e.GUID, 7, flatLatency{}, LookupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 19 {
		t.Errorf("final version = %d, want 19", got.Version)
	}
	rep, err := sys.VerifyConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Errorf("audit failed: %+v", rep)
	}
}
