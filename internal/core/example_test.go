package core_test

import (
	"fmt"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
	"dmap/internal/store"
	"dmap/internal/topology"
)

// Example shows the complete DMap flow: build the substrate, place a
// mapping at its K hosting ASs, and resolve it from elsewhere.
func Example() {
	// The routing substrate every participant shares: announced
	// prefixes and the agreed hash family.
	table := prefixtable.New()
	_ = table.Announce(netaddr.MustPrefix(netaddr.AddrFromOctets(10, 0, 0, 0), 8), 1)
	_ = table.Announce(netaddr.MustPrefix(netaddr.AddrFromOctets(128, 0, 0, 0), 1), 2)

	resolver, _ := core.NewResolver(guid.MustHasher(3, 0), table, 0)
	sys, _ := core.NewSystem(core.SystemConfig{Resolver: resolver, NumAS: 3})

	// A phone registers its GUID→NA mapping.
	g := guid.New("phone-42")
	_, _ = sys.Insert(store.Entry{
		GUID:    g,
		NAs:     []store.NA{{AS: 1, Addr: netaddr.AddrFromOctets(10, 1, 2, 3)}},
		Version: 1,
	}, 1)

	// Anyone resolves it with only local computation plus one overlay
	// hop (constRTT stands in for the Internet here).
	entry, outcome, _ := sys.Lookup(g, 0, constRTT{}, core.LookupOptions{})
	fmt.Printf("locator AS %d in %d attempt(s)\n", entry.NAs[0].AS, outcome.Attempts)
	// Output: locator AS 1 in 1 attempt(s)
}

// constRTT is a fixed-latency model for the example.
type constRTT struct{}

func (constRTT) RTT(src, dst int) topology.Micros { return 10_000 }
