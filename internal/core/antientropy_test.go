package core

import (
	"fmt"
	"testing"

	"dmap/internal/guid"
	"dmap/internal/store"
)

func aeEntry(name string, version uint64) store.Entry {
	return store.Entry{
		GUID:    guid.New(name),
		NAs:     []store.NA{{AS: 1}},
		Version: version,
	}
}

func mustPut(t *testing.T, st *store.Store, e store.Entry) {
	t.Helper()
	if _, err := st.Put(e); err != nil {
		t.Fatal(err)
	}
}

func TestDiffDigests(t *testing.T) {
	st := store.New()
	mustPut(t, st, aeEntry("same", 5))
	mustPut(t, st, aeEntry("fresher-here", 9))
	mustPut(t, st, aeEntry("staler-here", 2))

	page := []store.Digest{
		{GUID: guid.New("same"), Version: 5},
		{GUID: guid.New("fresher-here"), Version: 3},
		{GUID: guid.New("staler-here"), Version: 7},
		{GUID: guid.New("missing-here"), Version: 1},
	}
	newer, want := DiffDigests(st, page, true)
	if len(newer) != 1 || newer[0].GUID != guid.New("fresher-here") || newer[0].Version != 9 {
		t.Fatalf("newer = %+v", newer)
	}
	if len(want) != 2 {
		t.Fatalf("want = %+v", want)
	}
	wantSet := map[guid.GUID]bool{want[0]: true, want[1]: true}
	if !wantSet[guid.New("staler-here")] || !wantSet[guid.New("missing-here")] {
		t.Fatalf("want = %+v", want)
	}

	// A draining node keeps serving fresher copies but pulls nothing.
	newer, want = DiffDigests(st, page, false)
	if len(newer) != 1 || want != nil {
		t.Fatalf("draining diff = %+v, %+v", newer, want)
	}

	// A filtered page never triggers reverse pushes for absent GUIDs:
	// an empty page yields an empty diff no matter what st holds.
	if n, w := DiffDigests(st, nil, true); n != nil || w != nil {
		t.Fatalf("empty page diff = %+v, %+v", n, w)
	}
}

func TestDiffRangeDetectsMissingOnBothSides(t *testing.T) {
	st := store.New()
	mustPut(t, st, aeEntry("only-local", 4))
	mustPut(t, st, aeEntry("shared-fresh", 8))
	mustPut(t, st, aeEntry("shared-stale", 1))

	page := []store.Digest{
		{GUID: guid.New("shared-fresh"), Version: 2},
		{GUID: guid.New("shared-stale"), Version: 6},
		{GUID: guid.New("only-remote"), Version: 3},
	}
	// DiffRange needs the page in keyspace order.
	sortDigests(page)

	newer, want, covered := DiffRange(st, guid.GUID{}, guid.Max(), page, true, 0)
	if covered != guid.Max() {
		t.Fatalf("complete merge covered %s, want max", covered)
	}
	got := map[guid.GUID]uint64{}
	for _, e := range newer {
		got[e.GUID] = e.Version
	}
	// Range-completeness makes only-local a push — the reverse detection
	// the filtered diff cannot do.
	if len(got) != 2 || got[guid.New("only-local")] != 4 || got[guid.New("shared-fresh")] != 8 {
		t.Fatalf("newer = %+v", newer)
	}
	ws := map[guid.GUID]bool{}
	for _, g := range want {
		ws[g] = true
	}
	if len(ws) != 2 || !ws[guid.New("shared-stale")] || !ws[guid.New("only-remote")] {
		t.Fatalf("want = %+v", want)
	}
}

func TestDiffRangeTruncatesWithCoveredCursor(t *testing.T) {
	st := store.New()
	const n = 40
	for i := 0; i < n; i++ {
		mustPut(t, st, aeEntry(fmt.Sprintf("bulk-%d", i), 1))
	}

	// Empty page over the full keyspace: an empty peer sweeping a full
	// one. With max=7 the merge must truncate and hand back a resume
	// cursor; paging from it must eventually surface every entry.
	seen := map[guid.GUID]bool{}
	after := guid.GUID{}
	rounds := 0
	for {
		rounds++
		if rounds > n+2 {
			t.Fatal("covered cursor is not advancing")
		}
		newer, _, covered := DiffRange(st, after, guid.Max(), nil, true, 7)
		if len(newer) > 7 {
			t.Fatalf("truncated merge returned %d pushes, max 7", len(newer))
		}
		for _, e := range newer {
			if seen[e.GUID] {
				t.Fatalf("entry %s pushed twice", e.GUID.Short())
			}
			seen[e.GUID] = true
		}
		if covered == guid.Max() {
			break
		}
		if guid.Compare(covered, after) <= 0 {
			t.Fatalf("covered %s did not advance past %s", covered, after)
		}
		after = covered
	}
	if len(seen) != n {
		t.Fatalf("resumed sweep surfaced %d entries, want %d", len(seen), n)
	}
}

func TestApplyEntriesFreshestWins(t *testing.T) {
	st := store.New()
	mustPut(t, st, aeEntry("held", 5))
	applied, err := ApplyEntries(st, []store.Entry{
		aeEntry("held", 3),  // stale: no-op
		aeEntry("held", 9),  // fresher: applies
		aeEntry("novel", 1), // missing: applies
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
	if e, ok := st.Get(guid.New("held")); !ok || e.Version != 9 {
		t.Fatalf("held = %+v, %v", e, ok)
	}
}

// TestCollectStaleIsBoundedByStaleness pins the ReconcileAS fix: the
// candidate buffer must scale with the number of mappings actually in
// need of repair, not with total cluster state. Before the repairSet
// rewrite the rejoin path buffered every hosted mapping.
func TestCollectStaleIsBoundedByStaleness(t *testing.T) {
	sys := newTestSystem(t, 3, false)

	var hosted []store.Entry
	const victim = 42
	for i := 0; hosted == nil || len(hosted) < 50; i++ {
		e := store.Entry{
			GUID:    guid.FromUint64(uint64(1000 + i)),
			NAs:     []store.NA{{AS: 7}},
			Version: 1,
		}
		if _, err := sys.Insert(e, 7); err != nil {
			t.Fatal(err)
		}
		at, err := sys.hostedAt(e, victim)
		if err != nil {
			t.Fatal(err)
		}
		if at {
			hosted = append(hosted, e)
		}
		if i > 100000 {
			t.Fatal("could not find 50 mappings hosted at the victim")
		}
	}

	// Everything is in sync: a rejoin scan buffers nothing.
	set, err := sys.collectStale(victim)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 0 {
		t.Fatalf("healthy cluster buffered %d candidates, want 0", set.Len())
	}

	// Advance 3 of the victim's mappings on the *other* replicas only.
	const stale = 3
	for i := 0; i < stale; i++ {
		e := hosted[i]
		e.Version = 2
		placements, err := sys.Resolver().Place(e.GUID)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range placements {
			if p.AS == victim {
				continue
			}
			st, err := sys.Store(p.AS)
			if err != nil {
				t.Fatal(err)
			}
			mustPut(t, st, e)
		}
	}

	set, err = sys.collectStale(victim)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != stale {
		t.Fatalf("buffered %d candidates, want exactly the %d stale mappings (of %d hosted)",
			set.Len(), stale, len(hosted))
	}
	pulled, err := set.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if pulled != stale {
		t.Fatalf("applied %d, want %d", pulled, stale)
	}
}

func TestRepairSetKeepsFreshestOffer(t *testing.T) {
	target := store.New()
	mustPut(t, target, aeEntry("held", 5))
	set := newRepairSet(target)

	set.Offer(aeEntry("held", 4)) // staler than target: dropped
	set.Offer(aeEntry("held", 5)) // equal: dropped
	if set.Len() != 0 {
		t.Fatalf("stale offers buffered: Len = %d", set.Len())
	}
	set.Offer(aeEntry("held", 7))
	set.Offer(aeEntry("held", 6)) // staler than the buffered 7: dropped
	set.Offer(aeEntry("held", 9))
	set.Offer(aeEntry("novel", 1))
	if set.Len() != 2 {
		t.Fatalf("Len = %d, want 2", set.Len())
	}
	if _, err := set.Apply(); err != nil {
		t.Fatal(err)
	}
	if e, _ := target.Get(guid.New("held")); e.Version != 9 {
		t.Fatalf("held version = %d, want 9", e.Version)
	}
}

// sortDigests orders a page by GUID — insertion sort, test-sized input.
func sortDigests(ds []store.Digest) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && guid.Compare(ds[j].GUID, ds[j-1].GUID) < 0; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
