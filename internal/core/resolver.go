// Package core implements DMap itself: the direct mapping of flat GUIDs
// onto the announced network address space (Algorithm 1 of the paper),
// K-replica placement, and the insert/update/lookup protocols with local
// replication, churn handling and failure retries.
//
// The resolver side (this file) is pure: given the shared hash family and
// a BGP prefix table, every participant derives the same K hosting ASs
// for any GUID with only local computation — the property that gives DMap
// its single overlay hop.
package core

import (
	"fmt"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
)

// DefaultMaxRehash is M in Algorithm 1. With ≈45% of the space
// unannounced, the probability of still being in a hole after 10 rehashes
// is 0.45^10 ≈ 0.034% (§III-B).
const DefaultMaxRehash = 10

// Placement describes where one replica of a GUID's mapping lives and how
// Algorithm 1 got there.
type Placement struct {
	// AS hosts the replica.
	AS int
	// Addr is the hashed (or rehashed, or nearest-announced) address that
	// selected the AS.
	Addr netaddr.Addr
	// Replica is the hash-function index in [0, K).
	Replica int
	// Rehashes counts how many extra hashes Algorithm 1 needed.
	Rehashes int
	// UsedNearest reports that all M hashes fell into IP holes and the
	// minimum-IP-distance deputy was used.
	UsedNearest bool
}

// Resolver derives hosting ASs from GUIDs. It is safe for concurrent use
// as long as the prefix table is not mutated concurrently (System
// serializes churn).
type Resolver struct {
	hasher    *guid.Hasher
	table     *prefixtable.Table
	maxRehash int
}

// NewResolver builds a resolver over the shared hash family and prefix
// table. maxRehash ≤ 0 selects DefaultMaxRehash.
func NewResolver(h *guid.Hasher, t *prefixtable.Table, maxRehash int) (*Resolver, error) {
	if h == nil {
		return nil, fmt.Errorf("core: nil hasher")
	}
	if t == nil {
		return nil, fmt.Errorf("core: nil prefix table")
	}
	if maxRehash <= 0 {
		maxRehash = DefaultMaxRehash
	}
	return &Resolver{hasher: h, table: t, maxRehash: maxRehash}, nil
}

// K returns the replication factor.
func (r *Resolver) K() int { return r.hasher.K() }

// MaxRehash returns M.
func (r *Resolver) MaxRehash() int { return r.maxRehash }

// Table returns the underlying prefix table.
func (r *Resolver) Table() *prefixtable.Table { return r.table }

// Hasher returns the shared hash family.
func (r *Resolver) Hasher() *guid.Hasher { return r.hasher }

// ErrNoPrefixes reports an empty prefix table: no AS can host anything.
var ErrNoPrefixes = fmt.Errorf("core: prefix table is empty")

// PlaceReplica runs Algorithm 1 for one replica index: hash the GUID,
// rehash up to M−1 times while the address falls into an IP hole, then
// fall back to the announced prefix nearest in IP distance.
func (r *Resolver) PlaceReplica(g guid.GUID, replica int) (Placement, error) {
	addr := netaddr.Addr(r.hasher.Hash(g, replica))
	for m := 0; m < r.maxRehash; m++ {
		if e, ok := r.table.Lookup(addr); ok {
			return Placement{AS: e.AS, Addr: addr, Replica: replica, Rehashes: m}, nil
		}
		addr = netaddr.Addr(r.hasher.Rehash(uint32(addr), replica))
	}
	e, closest, ok := r.table.Nearest(addr)
	if !ok {
		return Placement{}, ErrNoPrefixes
	}
	return Placement{
		AS:          e.AS,
		Addr:        closest,
		Replica:     replica,
		Rehashes:    r.maxRehash,
		UsedNearest: true,
	}, nil
}

// Place returns all K placements for g, in replica order. Distinct
// replicas may land on the same AS (the paper accepts this; with ~26k
// candidate ASs it is rare).
func (r *Resolver) Place(g guid.GUID) ([]Placement, error) {
	out, err := r.PlaceInto(g, make([]Placement, 0, r.hasher.K()))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PlaceInto appends all K placements for g to dst and returns the
// extended slice, reusing dst's capacity — the allocation-free variant
// of Place for hot request paths. On error the partially extended dst
// is returned so callers pooling the slice can still recycle it.
func (r *Resolver) PlaceInto(g guid.GUID, dst []Placement) ([]Placement, error) {
	for i := 0; i < r.hasher.K(); i++ {
		p, err := r.PlaceReplica(g, i)
		if err != nil {
			return dst, err
		}
		dst = append(dst, p)
	}
	return dst, nil
}

// PlaceExcluding runs Algorithm 1 for one replica as if exclude(addr)
// addresses were holes. It implements the deputy search of §III-D1: a
// withdrawing AS finds where its orphan mappings must migrate by
// continuing the protocol past its own (about-to-vanish) prefix, and an
// announcing AS locates the old deputy by pretending its new prefix is
// still a hole.
func (r *Resolver) PlaceExcluding(g guid.GUID, replica int, exclude func(netaddr.Addr) bool) (Placement, error) {
	addr := netaddr.Addr(r.hasher.Hash(g, replica))
	for m := 0; m < r.maxRehash; m++ {
		if e, ok := r.table.Lookup(addr); ok && !exclude(addr) {
			return Placement{AS: e.AS, Addr: addr, Replica: replica, Rehashes: m}, nil
		}
		addr = netaddr.Addr(r.hasher.Rehash(uint32(addr), replica))
	}
	e, closest, ok := r.table.Nearest(addr)
	if !ok {
		return Placement{}, ErrNoPrefixes
	}
	return Placement{
		AS:          e.AS,
		Addr:        closest,
		Replica:     replica,
		Rehashes:    r.maxRehash,
		UsedNearest: true,
	}, nil
}

// PlaceByASNumber is the §VII variant that hashes GUIDs directly to AS
// numbers instead of addresses, bypassing the prefix table entirely.
// numAS is the size of the (dense) AS number space.
func (r *Resolver) PlaceByASNumber(g guid.GUID, replica, numAS int) (Placement, error) {
	if numAS <= 0 {
		return Placement{}, fmt.Errorf("core: numAS must be positive, got %d", numAS)
	}
	return Placement{
		AS:      r.hasher.HashToRange(g, replica, numAS),
		Replica: replica,
	}, nil
}

// RehashStats measures Algorithm 1's behaviour over a set of GUIDs: how
// often each rehash depth is reached and how often the nearest-prefix
// deputy fallback fires (the §III-B hole-probability analysis).
type RehashStats struct {
	// Samples is the number of (GUID, replica) placements measured.
	Samples int
	// DepthCounts[d] counts placements that needed exactly d rehashes.
	DepthCounts []int
	// NearestFallbacks counts placements that exhausted M rehashes.
	NearestFallbacks int
}

// FallbackRate returns the fraction of placements that used the deputy
// fallback.
func (s RehashStats) FallbackRate() float64 {
	if s.Samples == 0 {
		return 0
	}
	return float64(s.NearestFallbacks) / float64(s.Samples)
}

// MeasureRehash places n sequentially derived GUIDs (all K replicas each)
// and aggregates Algorithm 1 statistics.
func (r *Resolver) MeasureRehash(n int) (RehashStats, error) {
	st := RehashStats{DepthCounts: make([]int, r.maxRehash+1)}
	for i := 0; i < n; i++ {
		g := guid.FromUint64(uint64(i))
		for k := 0; k < r.hasher.K(); k++ {
			p, err := r.PlaceReplica(g, k)
			if err != nil {
				return RehashStats{}, err
			}
			st.Samples++
			st.DepthCounts[p.Rehashes]++
			if p.UsedNearest {
				st.NearestFallbacks++
			}
		}
	}
	return st, nil
}
