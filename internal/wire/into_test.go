package wire

import (
	"testing"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/store"
)

func intoTestEntry() store.Entry {
	return store.Entry{
		GUID: guid.New("into"),
		NAs: []store.NA{
			{AS: 1, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)},
			{AS: 2, Addr: netaddr.AddrFromOctets(10, 0, 0, 2)},
			{AS: 3, Addr: netaddr.AddrFromOctets(10, 0, 0, 3)},
		},
		Version: 42,
		Meta:    7,
	}
}

func TestDecodeEntryInto(t *testing.T) {
	want := intoTestEntry()
	enc, err := AppendEntry(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	var e store.Entry
	e.NAs = make([]store.NA, 0, store.MaxNAs)
	rest, err := DecodeEntryInto(&e, enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("DecodeEntryInto = (%d rest, %v)", len(rest), err)
	}
	if e.GUID != want.GUID || e.Version != want.Version || e.Meta != want.Meta || len(e.NAs) != 3 || e.NAs[2] != want.NAs[2] {
		t.Fatalf("decoded %+v, want %+v", e, want)
	}
	// Reuse across decodes with pre-grown capacity allocates nothing.
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeEntryInto(&e, enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeEntryInto allocs/op = %v, want 0", allocs)
	}
	if _, err := DecodeEntryInto(&e, enc[:5]); err == nil {
		t.Fatal("accepted truncated entry")
	}
}

func TestDecodeLookupRespInto(t *testing.T) {
	want := intoTestEntry()
	hit, err := AppendLookupResp(nil, LookupResp{Found: true, Entry: want})
	if err != nil {
		t.Fatal(err)
	}
	miss, _ := AppendLookupResp(nil, LookupResp{})

	var e store.Entry
	e.NAs = make([]store.NA, 0, store.MaxNAs)
	found, err := DecodeLookupRespInto(&e, hit)
	if err != nil || !found {
		t.Fatalf("DecodeLookupRespInto(hit) = (%v, %v)", found, err)
	}
	if e.GUID != want.GUID || e.Version != want.Version {
		t.Fatalf("decoded %+v", e)
	}
	found, err = DecodeLookupRespInto(&e, miss)
	if err != nil || found {
		t.Fatalf("DecodeLookupRespInto(miss) = (%v, %v)", found, err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if ok, err := DecodeLookupRespInto(&e, hit); err != nil || !ok {
			t.Fatal("decode failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeLookupRespInto allocs/op = %v, want 0", allocs)
	}
}
