package wire

import (
	"bytes"
	"testing"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/store"
)

func repairEntry(name string, version uint64) store.Entry {
	return store.Entry{
		GUID:    guid.New(name),
		NAs:     []store.NA{{AS: 3, Addr: netaddr.AddrFromOctets(10, 0, 0, 3)}},
		Version: version,
	}
}

func sortedDigests(versions ...uint64) []store.Digest {
	ds := make([]store.Digest, len(versions))
	for i, v := range versions {
		ds[i] = store.Digest{Version: v}
		// Distinct ascending GUIDs: index in the leading byte.
		ds[i].GUID[0] = byte(i + 1)
	}
	return ds
}

func TestRepairDigestRoundTrip(t *testing.T) {
	after := guid.GUID{}
	through := guid.Max()
	ds := sortedDigests(7, 9, 2)
	b, err := AppendRepairDigest(nil, after, through, ds)
	if err != nil {
		t.Fatal(err)
	}
	gotAfter, gotThrough, gotDs, err := DecodeRepairDigest(b)
	if err != nil {
		t.Fatal(err)
	}
	if gotAfter != after || gotThrough != through {
		t.Fatalf("range = (%s, %s]", gotAfter, gotThrough)
	}
	if len(gotDs) != len(ds) {
		t.Fatalf("digests = %d, want %d", len(gotDs), len(ds))
	}
	for i := range ds {
		if gotDs[i] != ds[i] {
			t.Fatalf("digest %d = %+v, want %+v", i, gotDs[i], ds[i])
		}
	}
}

func TestRepairDigestEmptyPage(t *testing.T) {
	// A zero-digest page over a live range is legal: it advertises that
	// the sender holds nothing there, prompting push-back.
	b, err := AppendRepairDigest(nil, guid.GUID{}, guid.Max(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, ds, err := DecodeRepairDigest(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Fatalf("digests = %d, want 0", len(ds))
	}
}

func TestRepairDigestRejectsBadPages(t *testing.T) {
	// Empty range.
	if _, err := AppendRepairDigest(nil, guid.Max(), guid.Max(), nil); err == nil {
		t.Fatal("empty range accepted")
	}
	// Out-of-order digests.
	ds := sortedDigests(1, 2)
	ds[0].GUID, ds[1].GUID = ds[1].GUID, ds[0].GUID
	if _, err := AppendRepairDigest(nil, guid.GUID{}, guid.Max(), ds); err == nil {
		t.Fatal("out-of-order page accepted")
	}
	// Digest outside the range.
	outside := sortedDigests(1)
	var through guid.GUID
	through[19] = 1 // tiny range, digest GUID {1,0,...} is beyond it
	if _, err := AppendRepairDigest(nil, guid.GUID{}, through, outside); err == nil {
		t.Fatal("out-of-range digest accepted")
	}
	// Decoder enforces the same invariants on hand-rolled bytes.
	good, err := AppendRepairDigest(nil, guid.GUID{}, guid.Max(), sortedDigests(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	// Swap the two digest GUID prefixes to break ordering.
	off := 2*guid.Size + 2
	bad[off], bad[off+guid.Size+8] = bad[off+guid.Size+8], bad[off]
	if _, _, _, err := DecodeRepairDigest(bad); err == nil {
		t.Fatal("decoder accepted out-of-order digests")
	}
	if _, _, _, err := DecodeRepairDigest(good[:len(good)-1]); err == nil {
		t.Fatal("decoder accepted truncated page")
	}
	if _, _, _, err := DecodeRepairDigest(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("decoder accepted trailing bytes")
	}
}

func TestRepairDiffRoundTrip(t *testing.T) {
	covered := guid.Max()
	newer := []store.Entry{repairEntry("fresh-a", 9), repairEntry("fresh-b", 4)}
	want := []guid.GUID{guid.New("want-1"), guid.New("want-2"), guid.New("want-3")}
	b, err := AppendRepairDiff(nil, covered, newer, want)
	if err != nil {
		t.Fatal(err)
	}
	gotCovered, gotNewer, gotWant, err := DecodeRepairDiff(b)
	if err != nil {
		t.Fatal(err)
	}
	if gotCovered != covered {
		t.Fatalf("covered = %s", gotCovered)
	}
	if len(gotNewer) != 2 || gotNewer[0].Version != 9 || gotNewer[1].Version != 4 {
		t.Fatalf("newer = %+v", gotNewer)
	}
	if len(gotWant) != 3 || gotWant[0] != want[0] || gotWant[2] != want[2] {
		t.Fatalf("want = %+v", gotWant)
	}

	// The all-caught-up reply: nothing newer, nothing wanted.
	b, err = AppendRepairDiff(nil, covered, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, n, w, err := DecodeRepairDiff(b); err != nil || n != nil || w != nil {
		t.Fatalf("empty diff = %v %v %v", n, w, err)
	}
}

func TestRepairFramesFitTheirPayloadBounds(t *testing.T) {
	// A maximal digest page must fit the non-batch frame bound.
	ds := make([]store.Digest, MaxRepairDigests)
	for i := range ds {
		ds[i].GUID[0] = byte(i >> 8)
		ds[i].GUID[1] = byte(i)
		ds[i].GUID[2] = 1 // strictly ascending, nonzero
	}
	b, err := AppendRepairDigest(nil, guid.GUID{}, guid.Max(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AppendFrame(nil, MsgRepairDigest, b); err != nil {
		t.Fatalf("maximal digest page exceeds MaxPayload: %d bytes", len(b))
	}

	// A maximal diff (MaxBatch worst-case entries + MaxBatch wants)
	// must fit the batch bound.
	newer := make([]store.Entry, MaxBatch)
	want := make([]guid.GUID, MaxBatch)
	for i := range newer {
		e := store.Entry{Version: 1, Meta: 0xFFFFFFFF}
		e.GUID[0] = byte(i >> 8)
		e.GUID[1] = byte(i)
		e.GUID[2] = 1
		for j := 0; j < store.MaxNAs; j++ {
			e.NAs = append(e.NAs, store.NA{AS: 1 << 30, Addr: netaddr.Addr(0xFFFFFFFF)})
		}
		newer[i] = e
		want[i] = e.GUID
	}
	b, err = AppendRepairDiff(nil, guid.Max(), newer, want)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AppendFrame(nil, MsgRepairDiff, b); err != nil {
		t.Fatalf("maximal diff exceeds MaxPayload: %d bytes", len(b))
	}
	if len(b) <= MaxFrame {
		t.Fatalf("maximal diff (%d bytes) fits MaxFrame; the batch bound is pointless", len(b))
	}
}

// FuzzDecodeRepairDigest hardens the digest-page decoder: never panic,
// and any accepted page re-encodes byte-identically (the ordering and
// range invariants survive a round trip).
func FuzzDecodeRepairDigest(f *testing.F) {
	seed, _ := AppendRepairDigest(nil, guid.GUID{}, guid.Max(), sortedDigests(3, 1, 4))
	f.Add(seed)
	empty, _ := AppendRepairDigest(nil, guid.GUID{}, guid.Max(), nil)
	f.Add(empty)
	f.Add(bytes.Repeat([]byte{0x42}, 2*guid.Size+2))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		after, through, ds, err := DecodeRepairDigest(data)
		if err != nil {
			return
		}
		enc, err := AppendRepairDigest(nil, after, through, ds)
		if err != nil {
			t.Fatalf("decoded page fails re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatal("re-encoding differs from accepted bytes")
		}
	})
}

// FuzzDecodeRepairDiff hardens the diff decoder the same way.
func FuzzDecodeRepairDiff(f *testing.F) {
	seed, _ := AppendRepairDiff(nil, guid.Max(),
		[]store.Entry{repairEntry("n", 2)}, []guid.GUID{guid.New("w")})
	f.Add(seed)
	empty, _ := AppendRepairDiff(nil, guid.GUID{}, nil, nil)
	f.Add(empty)
	f.Add(bytes.Repeat([]byte{0xAA}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		covered, newer, want, err := DecodeRepairDiff(data)
		if err != nil {
			return
		}
		enc, err := AppendRepairDiff(nil, covered, newer, want)
		if err != nil {
			t.Fatalf("decoded diff fails re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatal("re-encoding differs from accepted bytes")
		}
	})
}
