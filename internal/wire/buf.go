// Pooled frame/payload buffers: the allocation backbone of the
// single-op hot path.
//
// Ownership contract (DESIGN.md §9): a buffer obtained from a BufPool
// is owned exclusively by the caller until it is handed back with Put.
// Handing a buffer to Put transfers ownership to the pool immediately —
// the caller must not read, write or retain any slice aliasing it
// afterwards, because the pool will hand the same backing array to the
// next Get. Decoded values that must outlive the buffer (entries,
// GUIDs) are safe by construction: every Decode* in this package copies
// into fresh or caller-owned storage and never aliases its input.
//
// The pool is a fixed-capacity free list built on a channel rather than
// sync.Pool: channel sends and receives move plain []byte headers
// without boxing, so Get and Put are allocation-free in steady state —
// sync.Pool would heap-allocate a *[]byte on every Put. When the free
// list is empty Get falls back to make; when it is full Put drops the
// buffer for the GC. Either way the pool never blocks.
package wire

// Poison, when true, makes every BufPool.Put overwrite the buffer with
// a poison byte before recycling it. Any decoded value that (illegally)
// aliases a released buffer is then visibly corrupted instead of
// intermittently wrong. Test-only: set it from TestMain or a test body
// before traffic starts, never in production (it is read without
// synchronization on the hot path by design — a torn read just poisons
// or skips poisoning one buffer).
var Poison bool

// poisonByte fills released buffers under Poison. 0xA5 is unlikely to
// decode as anything structurally valid.
const poisonByte = 0xA5

// maxPooledBuf bounds what Put will retain: anything larger than the
// biggest legal frame (a traced batch frame plus its identified-frame
// header) was grown by a hostile or buggy path and is left to the GC.
const maxPooledBuf = MaxBatchFrame + TraceContextLen + FrameIDHeaderLen

// A BufPool recycles byte buffers between producers and consumers that
// may be different goroutines. The zero value is not usable; use
// NewBufPool.
type BufPool struct {
	free chan []byte
}

// NewBufPool returns a pool retaining at most size idle buffers.
func NewBufPool(size int) *BufPool {
	return &BufPool{free: make(chan []byte, size)}
}

// Get returns a zero-length buffer with capacity at least min, reusing
// a pooled buffer when one fits. The caller owns it until Put.
func (p *BufPool) Get(min int) []byte {
	select {
	case b := <-p.free:
		if cap(b) >= min {
			return b[:0]
		}
		// Too small for this caller; drop it rather than shuffle.
	default:
	}
	if min < 256 {
		min = 256 // converge the pool on generally useful sizes
	}
	return make([]byte, 0, min)
}

// Put releases b back to the pool. b may be nil or foreign (never
// obtained from any pool) — both are accepted, so call sites can
// release unconditionally. After Put returns the caller no longer owns
// b or anything aliasing it.
func (p *BufPool) Put(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:cap(b)]
	if Poison {
		for i := range b {
			b[i] = poisonByte
		}
	}
	select {
	case p.free <- b:
	default: // pool full; let the GC have it
	}
}
