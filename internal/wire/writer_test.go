package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWriterConcurrent drives many goroutines through one coalescing
// Writer and checks that every frame arrives intact: coalescing must
// only batch whole frames, never interleave or tear them.
func TestWriterConcurrent(t *testing.T) {
	const writers, perWriter = 8, 200
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	w := NewWriter(client, nil)
	got := make(map[uint64]string, writers*perWriter)
	done := make(chan error, 1)
	go func() {
		r := bufio.NewReader(server)
		for i := 0; i < writers*perWriter; i++ {
			typ, id, payload, err := ReadFrameID(r)
			if err != nil {
				done <- err
				return
			}
			if typ != MsgLookup {
				done <- fmt.Errorf("frame %d: type %v", i, typ)
				return
			}
			got[id] = string(payload)
		}
		done <- nil
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(g*perWriter + i)
				payload := []byte(fmt.Sprintf("frame-%d", id))
				if err := w.WriteFrameID(MsgLookup, id, payload); err != nil {
					t.Errorf("WriteFrameID(%d): %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < writers*perWriter; id++ {
		if want := fmt.Sprintf("frame-%d", id); got[id] != want {
			t.Fatalf("frame %d payload = %q, want %q", id, got[id], want)
		}
	}
}

// TestWriterPayloadNotRetained proves the ownership contract: the
// payload is serialized into the Writer's own pending buffer before
// WriteFrameID returns, so the caller may recycle it immediately even
// if the flush happens later.
func TestWriterPayloadNotRetained(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	// Signal when the flush reaches conn.Write: by then the payload has
	// been serialized into the Writer's pending buffer, and the pipe is
	// unbuffered so the frame itself is still in flight.
	serialized := make(chan struct{})
	w := NewWriter(&signalConn{Conn: client, entered: serialized}, nil)
	payload := []byte("do not retain me")
	errc := make(chan error, 1)
	go func() { errc <- w.WriteFrameID(MsgInsert, 7, payload) }()

	<-serialized
	for i := range payload {
		payload[i] = 0xFF
	}

	_, id, body, err := ReadFrameID(server)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if id != 7 || string(body) != "do not retain me" {
		t.Fatalf("frame = id %d payload %q; caller's buffer aliased", id, body)
	}
}

// signalConn closes entered the first time Write is called.
type signalConn struct {
	net.Conn
	entered chan struct{}
	once    sync.Once
}

func (c *signalConn) Write(b []byte) (int, error) {
	c.once.Do(func() { close(c.entered) })
	return c.Conn.Write(b)
}

// failConn fails every Write after the first n.
type failConn struct {
	net.Conn
	allowed atomic.Int64
}

var errInjected = errors.New("injected write failure")

func (c *failConn) Write(b []byte) (int, error) {
	if c.allowed.Add(-1) < 0 {
		return 0, errInjected
	}
	return len(b), nil
}

type discardConn struct{ net.Conn }

func (discardConn) Write(b []byte) (int, error)      { return len(b), nil }
func (discardConn) SetWriteDeadline(time.Time) error { return nil }
func (discardConn) Close() error                     { return nil }

func TestWriterErrorStickyAndOnFailOnce(t *testing.T) {
	var fails atomic.Int64
	conn := &failConn{Conn: discardConn{}}
	conn.allowed.Store(1)
	w := NewWriter(conn, func(error) { fails.Add(1) })

	if err := w.WriteFrameID(MsgPing, 1, nil); err != nil {
		t.Fatalf("first write: %v", err)
	}
	// Hammer the broken connection from several goroutines: exactly one
	// flusher records the error and fires onFail; everyone else sees the
	// sticky error.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = w.WriteFrameID(MsgPing, 2, nil)
			}
		}()
	}
	wg.Wait()
	if !errors.Is(w.Err(), errInjected) {
		t.Fatalf("sticky err = %v", w.Err())
	}
	if err := w.WriteFrameID(MsgPing, 3, nil); !errors.Is(err, errInjected) {
		t.Fatalf("write after failure = %v, want sticky error", err)
	}
	if n := fails.Load(); n != 1 {
		t.Fatalf("onFail fired %d times, want exactly 1", n)
	}
}

func TestWriterRejectsOversizedFrame(t *testing.T) {
	w := NewWriter(discardConn{}, nil)
	if err := w.WriteFrameID(MsgInsert, 1, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame err = %v", err)
	}
	// A rejected frame must not poison the writer.
	if err := w.WriteFrameID(MsgPing, 2, nil); err != nil {
		t.Fatalf("write after rejected frame: %v", err)
	}
}
