package wire

import (
	"sync"
	"testing"
)

func TestBufPoolGetPutRecycles(t *testing.T) {
	p := NewBufPool(2)
	b := p.Get(64)
	if len(b) != 0 || cap(b) < 64 {
		t.Fatalf("Get(64) = len %d cap %d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	p.Put(b)
	c := p.Get(1)
	if len(c) != 0 {
		t.Fatalf("recycled buffer has len %d, want 0", len(c))
	}
	if cap(c) != cap(b) {
		t.Fatalf("Get after Put returned cap %d, want recycled cap %d", cap(c), cap(b))
	}
}

func TestBufPoolGetMinCapacity(t *testing.T) {
	p := NewBufPool(2)
	// A pooled buffer too small for the request is dropped, not returned.
	p.Put(make([]byte, 0, 16))
	b := p.Get(1024)
	if cap(b) < 1024 {
		t.Fatalf("Get(1024) after small Put: cap %d", cap(b))
	}
	// Small requests still converge on the 256-byte floor.
	if c := p.Get(1); cap(c) < 256 {
		t.Fatalf("Get(1) fresh buffer cap %d, want >= 256", cap(c))
	}
}

func TestBufPoolPutRejectsDegenerate(t *testing.T) {
	p := NewBufPool(2)
	p.Put(nil)                             // must not panic or pool a nil
	p.Put(make([]byte, 0))                 // cap 0: nothing to recycle
	p.Put(make([]byte, 0, maxPooledBuf+1)) // oversized: left to the GC
	if b := p.Get(1); cap(b) != 256 {
		t.Fatalf("pool retained a degenerate buffer: Get cap %d", cap(b))
	}
}

func TestBufPoolFullDrops(t *testing.T) {
	p := NewBufPool(1)
	p.Put(make([]byte, 0, 300))
	p.Put(make([]byte, 0, 400)) // pool full: dropped, must not block
	if b := p.Get(1); cap(b) != 300 {
		t.Fatalf("Get cap %d, want the first pooled buffer (300)", cap(b))
	}
}

func TestBufPoolPoisonOverwrites(t *testing.T) {
	saved := Poison
	Poison = true
	defer func() { Poison = saved }()

	p := NewBufPool(1)
	b := append(p.Get(256), "precious bytes"...)
	p.Put(b)
	for i, v := range b[:cap(b)] {
		if v != poisonByte {
			t.Fatalf("byte %d = %#x after poisoned Put, want %#x", i, v, poisonByte)
		}
	}
}

func TestBufPoolConcurrent(t *testing.T) {
	p := NewBufPool(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := p.Get(64)
				b = append(b, seed, byte(i))
				if b[0] != seed || b[1] != byte(i) {
					panic("buffer shared while owned")
				}
				p.Put(b)
			}
		}(byte(g))
	}
	wg.Wait()
}
