// Trace-context propagation: the v2 frame extension behind the
// internal/trace distributed tracer.
//
// The extension is negotiated per connection: a client advertising
// FeatTrace in its MsgHello, answered by a server echoing FeatTrace in
// MsgHelloAck, may send *traced frames* — request frames whose type
// byte carries the high TraceBit and whose payload is prefixed with a
// fixed 17-byte trace context: trace ID(8) ‖ parent span ID(8) ‖
// flags(1). Responses are never traced (the client already owns the
// trace). Peers that never negotiated the feature never see the bit:
// v1 framing is untouched, and a v2 server that did not advertise
// FeatTrace receives only plain frames — backward compatible by
// construction rather than by tolerance.
package wire

import (
	"encoding/binary"
	"errors"
	"io"

	"dmap/internal/trace"
)

// Hello feature flags (bitmask). A flag appears in a MsgHelloAck only
// if the hello advertised it, so either side can veto an extension.
const (
	// FeatTrace enables traced request frames on the connection.
	FeatTrace byte = 1 << 0
	// FeatRepair enables anti-entropy repair frames (repair.go) on the
	// connection.
	FeatRepair byte = 1 << 1
)

// TraceBit marks a frame type as trace-prefixed. The bit is outside
// the range of defined message types, so an un-negotiated traced frame
// decodes as an unknown type and is rejected, not misparsed.
const TraceBit MsgType = 0x80

// TraceContextLen is the fixed size of the wire trace context:
// trace ID(8) ‖ parent span ID(8) ‖ flags(1).
const TraceContextLen = 17

// traceFlagSampled is the only defined context flag bit.
const traceFlagSampled = 0x01

// ErrBadTraceContext reports a malformed trace-context prefix.
var ErrBadTraceContext = errors.New("wire: malformed trace context")

// WithTrace sets the trace bit on a frame type.
func WithTrace(t MsgType) MsgType { return t | TraceBit }

// IsTraced reports whether a frame type carries the trace bit.
func IsTraced(t MsgType) bool { return t&TraceBit != 0 }

// BaseType strips the trace bit, returning the underlying frame type.
func BaseType(t MsgType) MsgType { return t &^ TraceBit }

// AppendTraceContext encodes a trace context prefix.
func AppendTraceContext(dst []byte, tc trace.Context) []byte {
	var buf [TraceContextLen]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(tc.Trace))
	binary.BigEndian.PutUint64(buf[8:16], uint64(tc.Span))
	if tc.Sampled {
		buf[16] = traceFlagSampled
	}
	return append(dst, buf[:]...)
}

// DecodeTraceContext decodes a trace context prefix and returns the
// remaining payload. Unknown flag bits and a zero trace ID are
// rejected: an honest sender never produces either, and strictness
// here keeps the flag space available for future extensions.
func DecodeTraceContext(b []byte) (trace.Context, []byte, error) {
	if len(b) < TraceContextLen {
		return trace.Context{}, nil, ErrBadTraceContext
	}
	flags := b[16]
	if flags&^byte(traceFlagSampled) != 0 {
		return trace.Context{}, nil, ErrBadTraceContext
	}
	tc := trace.Context{
		Trace:   trace.TraceID(binary.BigEndian.Uint64(b[0:8])),
		Span:    trace.SpanID(binary.BigEndian.Uint64(b[8:16])),
		Sampled: flags&traceFlagSampled != 0,
	}
	if tc.Trace == 0 {
		return trace.Context{}, nil, ErrBadTraceContext
	}
	return tc, b[TraceContextLen:], nil
}

// AppendFrameIDTrace appends one complete traced identified frame to
// dst: the frame type gains TraceBit and the payload is prefixed with
// the encoded tc. Callers must have negotiated FeatTrace on the
// connection. Like AppendFrameID it preserves existing dst bytes, so
// traced and plain frames coalesce into the same buffer.
func AppendFrameIDTrace(dst []byte, t MsgType, id uint64, tc trace.Context, payload []byte) ([]byte, error) {
	t = WithTrace(t)
	if TraceContextLen+len(payload) > MaxPayload(t) {
		return nil, ErrFrameTooLarge
	}
	var hdr [FrameIDHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(idSize+TraceContextLen+len(payload)))
	hdr[4] = byte(t)
	binary.BigEndian.PutUint64(hdr[5:FrameIDHeaderLen], id)
	dst = append(dst, hdr[:]...)
	dst = AppendTraceContext(dst, tc)
	return append(dst, payload...), nil
}

// WriteFrameIDTrace writes one traced identified frame: the frame type
// gains TraceBit and the payload is prefixed with tc. Callers must
// have negotiated FeatTrace on the connection. It allocates per call;
// hot paths go through Writer or AppendFrameIDTrace.
func WriteFrameIDTrace(w io.Writer, t MsgType, id uint64, tc trace.Context, payload []byte) error {
	buf, err := AppendFrameIDTrace(nil, t, id, tc, payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}
