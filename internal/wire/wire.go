// Package wire defines the binary protocol spoken between DMap resolver
// nodes and clients: length-prefixed frames carrying fixed-layout
// messages, encoded with encoding/binary. The layout mirrors the §IV-A
// storage accounting: a mapping entry is the 160-bit GUID, a version, 32
// bits of metadata and up to five 64-bit NAs (32-bit AS index + 32-bit
// address).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/store"
)

// MsgType tags a frame.
type MsgType byte

// Frame types.
const (
	MsgInsert MsgType = iota + 1 // entry → ack; also used for updates
	MsgInsertAck
	MsgLookup     // guid → lookup resp
	MsgLookupResp // found flag + entry
	MsgDelete     // guid → delete ack
	MsgDeleteAck  // existed flag
	MsgPing       // empty → pong
	MsgPong
	MsgError // UTF-8 reason; a node rejecting a request instead of hanging

	// v2 additions. Hello/HelloAck negotiate the protocol version on a
	// fresh connection (v2.go); the batch types carry up to MaxBatch
	// entries/GUIDs per frame and are allowed a larger payload bound.
	MsgHello          // magic + requested version → hello ack
	MsgHelloAck       // accepted version
	MsgBatchInsert    // uint16 count + entries → batch insert ack
	MsgBatchInsertAck // uint16 count + per-entry acked flags
	MsgBatchLookup    // uint16 count + GUIDs → batch lookup resp
	MsgBatchLookupResp

	// Anti-entropy repair frames (repair.go), gated behind the
	// FeatRepair hello flag: a digest page advertising (GUID, version)
	// fingerprints over a keyspace range, answered by the differences.
	MsgRepairDigest // after + through + digests → repair diff
	MsgRepairDiff   // covered + newer entries + wanted GUIDs
)

// String names the frame type.
func (t MsgType) String() string {
	if IsTraced(t) {
		return "traced+" + BaseType(t).String()
	}
	switch t {
	case MsgInsert:
		return "insert"
	case MsgInsertAck:
		return "insert-ack"
	case MsgLookup:
		return "lookup"
	case MsgLookupResp:
		return "lookup-resp"
	case MsgDelete:
		return "delete"
	case MsgDeleteAck:
		return "delete-ack"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgError:
		return "error"
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgBatchInsert:
		return "batch-insert"
	case MsgBatchInsertAck:
		return "batch-insert-ack"
	case MsgBatchLookup:
		return "batch-lookup"
	case MsgBatchLookupResp:
		return "batch-lookup-resp"
	case MsgRepairDigest:
		return "repair-digest"
	case MsgRepairDiff:
		return "repair-diff"
	default:
		return fmt.Sprintf("MsgType(%d)", byte(t))
	}
}

// MaxFrame bounds a non-batch frame's payload, defending the decoder
// against hostile lengths.
const MaxFrame = 16 * 1024

// MaxBatchFrame bounds a batch frame's payload: MaxBatch entries at the
// maximum entry encoding (73 bytes) fit with room to spare.
const MaxBatchFrame = 64 * 1024

// MaxPayload returns the payload bound for a frame type: batch frames
// are allowed MaxBatchFrame, everything else MaxFrame; a traced frame
// (TraceBit set) is allowed its base type's bound plus the fixed
// trace-context prefix. Both sides of the protocol enforce it
// symmetrically, so a frame one peer can encode is a frame the other
// will accept.
func MaxPayload(t MsgType) int {
	bound := MaxFrame
	switch BaseType(t) {
	case MsgBatchInsert, MsgBatchInsertAck, MsgBatchLookup, MsgBatchLookupResp, MsgRepairDiff:
		// MsgRepairDiff carries up to MaxBatch full entries plus a want
		// list, which does not fit the non-batch bound.
		bound = MaxBatchFrame
	}
	if IsTraced(t) {
		bound += TraceContextLen
	}
	return bound
}

// Frame errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds payload bound")
	ErrTruncated     = errors.New("wire: truncated message")
)

// FrameHeaderLen is the v1 frame header: uint32 length ‖ type byte.
const FrameHeaderLen = 5

// AppendFrame appends one complete v1 frame (header + payload) to dst.
// Like every Append* in this package it works against a reused,
// non-empty dst: existing bytes are preserved and the frame lands after
// them.
func AppendFrame(dst []byte, t MsgType, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload(t) {
		return nil, ErrFrameTooLarge
	}
	var hdr [FrameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(t)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// WriteFrame writes one frame: uint32 payload length, type byte, payload.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxPayload(t) {
		return ErrFrameTooLarge
	}
	var hdr [FrameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, rejecting oversized payloads before
// allocating. The payload is freshly allocated; prefer ReadFrameInto on
// hot paths.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	return ReadFrameInto(r, nil)
}

// ReadFrameInto reads one frame into dst's capacity, growing it only
// when the payload does not fit. The returned payload aliases the
// (possibly grown) dst: the caller owns it and must not hand dst to
// anyone else until it is done with the payload.
func ReadFrameInto(r io.Reader, dst []byte) (MsgType, []byte, error) {
	// Stage the header through dst's storage: a local array passed to
	// io.ReadFull escapes through the interface and allocates per frame.
	hdr := grow(dst, FrameHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	t := MsgType(hdr[4])
	if n > uint32(MaxPayload(t)) {
		return 0, nil, ErrFrameTooLarge
	}
	// The payload overwrites the header bytes — they are fully parsed.
	payload := grow(dst, int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return t, payload, nil
}

// grow returns a length-n slice reusing dst's storage when it fits.
func grow(dst []byte, n int) []byte {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]byte, n)
}

// AppendEntry encodes a mapping entry:
// GUID(20) ‖ version(8) ‖ meta(4) ‖ naCount(1) ‖ naCount × (AS(4) ‖ addr(4)).
func AppendEntry(dst []byte, e store.Entry) ([]byte, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	dst = append(dst, e.GUID[:]...)
	dst = binary.BigEndian.AppendUint64(dst, e.Version)
	dst = binary.BigEndian.AppendUint32(dst, e.Meta)
	dst = append(dst, byte(len(e.NAs)))
	for _, na := range e.NAs {
		dst = binary.BigEndian.AppendUint32(dst, uint32(na.AS))
		dst = binary.BigEndian.AppendUint32(dst, uint32(na.Addr))
	}
	return dst, nil
}

// DecodeEntry decodes an entry and returns the remaining bytes. It
// allocates a fresh NAs slice; hot paths that can reuse a buffer should
// call DecodeEntryInto.
func DecodeEntry(b []byte) (store.Entry, []byte, error) {
	var e store.Entry
	rest, err := DecodeEntryInto(&e, b)
	if err != nil {
		return store.Entry{}, nil, err
	}
	return e, rest, nil
}

// DecodeEntryInto decodes an entry into e, reusing e.NAs' capacity, and
// returns the remaining bytes. With cap(e.NAs) >= store.MaxNAs it
// allocates nothing — the caller-supplied-buffer decode the client's
// LookupInto path is built on. On error e's contents are unspecified.
func DecodeEntryInto(e *store.Entry, b []byte) ([]byte, error) {
	const fixed = guid.Size + 8 + 4 + 1
	if len(b) < fixed {
		return nil, ErrTruncated
	}
	copy(e.GUID[:], b[:guid.Size])
	b = b[guid.Size:]
	e.Version = binary.BigEndian.Uint64(b)
	e.Meta = binary.BigEndian.Uint32(b[8:])
	n := int(b[12])
	b = b[13:]
	if n == 0 || n > store.MaxNAs {
		return nil, fmt.Errorf("wire: NA count %d out of range", n)
	}
	if len(b) < 8*n {
		return nil, ErrTruncated
	}
	e.NAs = e.NAs[:0]
	for i := 0; i < n; i++ {
		e.NAs = append(e.NAs, store.NA{
			AS:   int(binary.BigEndian.Uint32(b)),
			Addr: netaddr.Addr(binary.BigEndian.Uint32(b[4:])),
		})
		b = b[8:]
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// AppendGUID encodes a bare GUID.
func AppendGUID(dst []byte, g guid.GUID) []byte {
	return append(dst, g[:]...)
}

// DecodeGUID decodes a bare GUID and returns the remaining bytes.
func DecodeGUID(b []byte) (guid.GUID, []byte, error) {
	if len(b) < guid.Size {
		return guid.GUID{}, nil, ErrTruncated
	}
	var g guid.GUID
	copy(g[:], b[:guid.Size])
	return g, b[guid.Size:], nil
}

// MaxErrorLen bounds a MsgError reason string.
const MaxErrorLen = 256

// ErrKind classifies a MsgError reply so clients can react per cause
// instead of string-matching reasons. The split that matters under load:
// a draining node (ErrKindDraining) has answered and will keep refusing,
// so the client should fail over to another replica immediately, while
// an overloaded node (ErrKindShed) refused only this instant's excess —
// the client should back off and retry rather than migrate its load to
// the next replica and overload that one too.
type ErrKind byte

// MsgError kinds. The byte is the first payload byte of every MsgError
// frame: kind(1) ‖ reason(UTF-8).
const (
	// ErrKindGeneric is an unclassified refusal (also what an empty
	// MsgError payload decodes to).
	ErrKindGeneric ErrKind = 0
	// ErrKindBadRequest reports a malformed or unknown frame.
	ErrKindBadRequest ErrKind = 1
	// ErrKindDraining reports a write refused by a draining node
	// (§III-D1 handoff posture): fail over, the node stays read-only.
	ErrKindDraining ErrKind = 2
	// ErrKindShed reports a request refused by admission control: the
	// node is over its in-flight limit right now. Back off and retry;
	// do not treat the node as down.
	ErrKindShed ErrKind = 3
	// ErrKindInternal reports a server-side failure handling a
	// well-formed request.
	ErrKindInternal ErrKind = 4
)

// String names the error kind.
func (k ErrKind) String() string {
	switch k {
	case ErrKindGeneric:
		return "generic"
	case ErrKindBadRequest:
		return "bad-request"
	case ErrKindDraining:
		return "draining"
	case ErrKindShed:
		return "shed"
	case ErrKindInternal:
		return "internal"
	default:
		return fmt.Sprintf("ErrKind(%d)", byte(k))
	}
}

// AppendError encodes a generic-kind MsgError body, truncating
// oversized reasons.
func AppendError(dst []byte, reason string) []byte {
	return AppendErrorKind(dst, ErrKindGeneric, reason)
}

// AppendErrorKind encodes a MsgError body — kind(1) ‖ reason —
// truncating oversized reasons.
func AppendErrorKind(dst []byte, kind ErrKind, reason string) []byte {
	if len(reason) > MaxErrorLen {
		reason = reason[:MaxErrorLen]
	}
	dst = append(dst, byte(kind))
	return append(dst, reason...)
}

// DecodeError decodes a MsgError body, returning the reason only.
func DecodeError(b []byte) (string, error) {
	_, reason, err := DecodeErrorKind(b)
	return reason, err
}

// DecodeErrorKind decodes a MsgError body into its kind and reason.
// An empty payload decodes as (ErrKindGeneric, ""); unknown kind bytes
// are returned as-is so newer kinds degrade to a caller's default
// handling instead of a decode failure. Oversized payloads are rejected
// rather than truncated: an honest node never sends one.
func DecodeErrorKind(b []byte) (ErrKind, string, error) {
	if len(b) == 0 {
		return ErrKindGeneric, "", nil
	}
	if len(b) > 1+MaxErrorLen {
		return 0, "", fmt.Errorf("wire: error reason %d bytes exceeds %d", len(b)-1, MaxErrorLen)
	}
	return ErrKind(b[0]), string(b[1:]), nil
}

// LookupResp is the body of a MsgLookupResp frame.
type LookupResp struct {
	Found bool
	Entry store.Entry
}

// AppendLookupResp encodes a lookup response.
func AppendLookupResp(dst []byte, r LookupResp) ([]byte, error) {
	if !r.Found {
		return append(dst, 0), nil
	}
	dst = append(dst, 1)
	return AppendEntry(dst, r.Entry)
}

// DecodeLookupResp decodes a lookup response, allocating a fresh entry.
func DecodeLookupResp(b []byte) (LookupResp, error) {
	var e store.Entry
	found, err := DecodeLookupRespInto(&e, b)
	if err != nil {
		return LookupResp{}, err
	}
	if !found {
		return LookupResp{}, nil
	}
	return LookupResp{Found: true, Entry: e}, nil
}

// DecodeLookupRespInto decodes a lookup response into e, reusing its
// NAs capacity, and reports whether the entry was found (e is untouched
// on a miss). On error e's contents are unspecified.
func DecodeLookupRespInto(e *store.Entry, b []byte) (bool, error) {
	if len(b) < 1 {
		return false, ErrTruncated
	}
	switch b[0] {
	case 0:
		return false, nil
	case 1:
		if _, err := DecodeEntryInto(e, b[1:]); err != nil {
			return false, err
		}
		return true, nil
	default:
		return false, fmt.Errorf("wire: bad found flag %d", b[0])
	}
}
