// Anti-entropy repair frames: the v2 wire extension behind the
// background replica-repair protocol (DESIGN.md §12).
//
// The extension is negotiated per connection exactly like tracing: a
// peer advertising FeatRepair in its MsgHello, answered by a server
// echoing FeatRepair in MsgHelloAck, may send MsgRepairDigest frames. A
// digest frame advertises a bounded page of (GUID, version)
// fingerprints covering a keyspace interval (after, through] —
// range-complete: every mapping the sender holds in the interval is
// fingerprinted, so absence is information. The receiver answers
// MsgRepairDiff with everything it holds newer (or that the sender
// lacks) in the interval, plus the GUIDs it wants pushed because the
// sender's copy is fresher; `covered` bounds the sub-interval the reply
// fully compared, so an oversized diff resumes from there instead of
// silently truncating. Entry pushes reuse MsgBatchInsert — the store's
// §III-D2 freshest-wins Put makes them idempotent.
//
// Un-negotiated peers never see these types: a v1 server rejects them
// as unknown frames, and a v2 server that did not grant FeatRepair
// refuses them per frame.
package wire

import (
	"encoding/binary"
	"fmt"

	"dmap/internal/guid"
	"dmap/internal/store"
)

// MaxRepairDigests bounds the digests per MsgRepairDigest frame. At the
// 28-byte digest encoding a full page stays under the non-batch
// MaxFrame payload bound.
const MaxRepairDigests = MaxBatch

// appendRepairCount encodes a uint16 count that — unlike a batch
// count — may be zero: an empty digest page over a non-empty range
// still tells the receiver the sender holds nothing there.
func appendRepairCount(dst []byte, n int) ([]byte, error) {
	if n < 0 || n > MaxBatch {
		return nil, ErrBatchSize
	}
	return binary.BigEndian.AppendUint16(dst, uint16(n)), nil
}

func decodeRepairCount(b []byte) (int, []byte, error) {
	if len(b) < 2 {
		return 0, nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	if n > MaxBatch {
		return 0, nil, ErrBatchSize
	}
	return n, b[2:], nil
}

// AppendRepairDigest encodes a MsgRepairDigest body:
// after(20) ‖ through(20) ‖ uint16 count ‖ count × (GUID(20) ‖ version(8)).
// The digests must lie in (after, through] in strictly ascending
// keyspace order — exactly what Store.ShardDigests produces.
func AppendRepairDigest(dst []byte, after, through guid.GUID, ds []store.Digest) ([]byte, error) {
	if guid.Compare(after, through) >= 0 {
		return nil, fmt.Errorf("wire: empty repair range (%s, %s]", after.Short(), through.Short())
	}
	dst = append(dst, after[:]...)
	dst = append(dst, through[:]...)
	dst, err := appendRepairCount(dst, len(ds))
	if err != nil {
		return nil, err
	}
	prev := after
	for _, d := range ds {
		if guid.Compare(d.GUID, prev) <= 0 || guid.Compare(d.GUID, through) > 0 {
			return nil, fmt.Errorf("wire: digest %s outside or out of order in (%s, %s]",
				d.GUID.Short(), after.Short(), through.Short())
		}
		prev = d.GUID
		dst = append(dst, d.GUID[:]...)
		dst = binary.BigEndian.AppendUint64(dst, d.Version)
	}
	return dst, nil
}

// DecodeRepairDigest decodes a MsgRepairDigest body, enforcing the
// encoder's invariants: a non-empty range, digests strictly ascending
// and inside it, no trailing bytes. The returned page is freshly
// allocated.
func DecodeRepairDigest(b []byte) (after, through guid.GUID, ds []store.Digest, err error) {
	if len(b) < 2*guid.Size+2 {
		return after, through, nil, ErrTruncated
	}
	copy(after[:], b[:guid.Size])
	copy(through[:], b[guid.Size:2*guid.Size])
	if guid.Compare(after, through) >= 0 {
		return after, through, nil, fmt.Errorf("wire: empty repair range")
	}
	n, b, err := decodeRepairCount(b[2*guid.Size:])
	if err != nil {
		return after, through, nil, err
	}
	const digestLen = guid.Size + 8
	if len(b) != n*digestLen {
		return after, through, nil, ErrTruncated
	}
	ds = make([]store.Digest, n)
	prev := after
	for i := 0; i < n; i++ {
		copy(ds[i].GUID[:], b[:guid.Size])
		ds[i].Version = binary.BigEndian.Uint64(b[guid.Size:])
		b = b[digestLen:]
		if guid.Compare(ds[i].GUID, prev) <= 0 || guid.Compare(ds[i].GUID, through) > 0 {
			return after, through, nil, fmt.Errorf("wire: digest %d outside or out of order", i)
		}
		prev = ds[i].GUID
	}
	return after, through, ds, nil
}

// AppendRepairDiff encodes a MsgRepairDiff body:
// covered(20) ‖ uint16 newerCount ‖ newerCount × entry ‖
// uint16 wantCount ‖ wantCount × GUID.
// covered is the upper bound of the fully-compared sub-range; a
// receiver that had to truncate its reply sets covered below the
// digest's through and the sweeper resumes from it.
func AppendRepairDiff(dst []byte, covered guid.GUID, newer []store.Entry, want []guid.GUID) ([]byte, error) {
	dst = append(dst, covered[:]...)
	dst, err := appendRepairCount(dst, len(newer))
	if err != nil {
		return nil, err
	}
	for _, e := range newer {
		if dst, err = AppendEntry(dst, e); err != nil {
			return nil, err
		}
	}
	if dst, err = appendRepairCount(dst, len(want)); err != nil {
		return nil, err
	}
	for _, g := range want {
		dst = AppendGUID(dst, g)
	}
	return dst, nil
}

// DecodeRepairDiff decodes a MsgRepairDiff body. Trailing bytes are
// rejected; newer and want are freshly allocated (nil when empty).
func DecodeRepairDiff(b []byte) (covered guid.GUID, newer []store.Entry, want []guid.GUID, err error) {
	if len(b) < guid.Size+2 {
		return covered, nil, nil, ErrTruncated
	}
	copy(covered[:], b[:guid.Size])
	n, b, err := decodeRepairCount(b[guid.Size:])
	if err != nil {
		return covered, nil, nil, err
	}
	if n > 0 {
		newer = make([]store.Entry, n)
		for i := 0; i < n; i++ {
			if newer[i], b, err = DecodeEntry(b); err != nil {
				return covered, nil, nil, err
			}
		}
	}
	m, b, err := decodeRepairCount(b)
	if err != nil {
		return covered, nil, nil, err
	}
	if len(b) != m*guid.Size {
		return covered, nil, nil, ErrTruncated
	}
	if m > 0 {
		want = make([]guid.GUID, m)
		for i := 0; i < m; i++ {
			if want[i], b, err = DecodeGUID(b); err != nil {
				return covered, nil, nil, err
			}
		}
	}
	return covered, newer, want, nil
}
