// Protocol v2: multiplexed, pipelined framing with batched operations.
//
// A v2 connection opens with a version handshake — the client sends
// MsgHello (magic + highest version it speaks) in plain v1 framing, the
// server answers MsgHelloAck with the version it accepts — and then
// switches to identified frames: every frame carries an 8-byte request
// ID between the type byte and the payload, so responses may return in
// any order and many requests can be in flight on one connection.
// Request IDs are opaque to the server; it echoes the ID of the request
// a frame answers.
//
// v1 peers keep working by construction: a v1 client never sends
// MsgHello, so the server falls back to sequential v1 framing on the
// first frame; a v1 server answers MsgHello with MsgError ("unknown
// frame type"), which a v2 client treats as "speak v1 here".
//
// Batch frames (MsgBatchInsert/MsgBatchLookup and their acks) carry up
// to MaxBatch entries/GUIDs each under the larger MaxBatchFrame payload
// bound, amortizing per-frame and per-syscall overhead — the standard
// lever for mobile-host churn at the paper's §VI update rates.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dmap/internal/guid"
	"dmap/internal/store"
)

// Protocol versions.
const (
	Version1 = 1 // sequential request/response, anonymous frames
	Version2 = 2 // multiplexed identified frames, batch ops
)

// helloMagic guards the handshake against a non-DMap peer that happens
// to send a length-plausible first frame.
const helloMagic = 0x444D6150 // "DMaP"

// ErrBadHello reports a MsgHello payload that is not a DMap handshake.
var ErrBadHello = errors.New("wire: malformed hello")

// AppendHello encodes a MsgHello body with no feature flags:
// magic(4) ‖ version(1). Kept as the canonical legacy form so peers
// that predate feature negotiation byte-match what they always sent.
func AppendHello(dst []byte, version byte) []byte {
	return AppendHelloFeat(dst, version, 0)
}

// AppendHelloFeat encodes a MsgHello body advertising feature flags:
// magic(4) ‖ version(1) [‖ feat(1)]. A zero feat byte is omitted,
// producing the exact legacy 5-byte encoding — a peer that requests no
// extensions is indistinguishable from one that predates them.
func AppendHelloFeat(dst []byte, version, feat byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, helloMagic)
	dst = append(dst, version)
	if feat != 0 {
		dst = append(dst, feat)
	}
	return dst
}

// DecodeHello decodes a MsgHello body and returns the requested
// version and feature flags. Both the 5-byte legacy form (feat = 0)
// and the 6-byte feature form are accepted.
func DecodeHello(b []byte) (version, feat byte, err error) {
	if len(b) != 5 && len(b) != 6 {
		return 0, 0, ErrBadHello
	}
	if binary.BigEndian.Uint32(b) != helloMagic {
		return 0, 0, ErrBadHello
	}
	v := b[4]
	if v < Version1 {
		return 0, 0, ErrBadHello
	}
	if len(b) == 6 {
		feat = b[5]
	}
	return v, feat, nil
}

// AppendHelloAck encodes a MsgHelloAck body with no feature flags.
func AppendHelloAck(dst []byte, version byte) []byte {
	return AppendHelloAckFeat(dst, version, 0)
}

// AppendHelloAckFeat encodes a MsgHelloAck body: the accepted version,
// then — only when non-zero — the accepted feature flags. The accepted
// set must be a subset of what the hello advertised.
func AppendHelloAckFeat(dst []byte, version, feat byte) []byte {
	dst = append(dst, version)
	if feat != 0 {
		dst = append(dst, feat)
	}
	return dst
}

// DecodeHelloAck decodes a MsgHelloAck body, returning the accepted
// version and feature flags (1- and 2-byte forms).
func DecodeHelloAck(b []byte) (version, feat byte, err error) {
	if (len(b) != 1 && len(b) != 2) || b[0] < Version1 {
		return 0, 0, fmt.Errorf("wire: malformed hello ack")
	}
	if len(b) == 2 {
		feat = b[1]
	}
	return b[0], feat, nil
}

// idSize is the per-frame request-ID width in v2 framing.
const idSize = 8

// FrameIDHeaderLen is the identified (v2) frame header:
// uint32 length ‖ type ‖ uint64 request ID.
const FrameIDHeaderLen = 4 + 1 + idSize

// AppendFrameID appends one complete identified (v2) frame (header +
// request ID + payload) to dst. Existing dst bytes are preserved, so
// frames can be coalesced back to back into one buffer and written with
// a single syscall (Writer does exactly that).
func AppendFrameID(dst []byte, t MsgType, id uint64, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload(t) {
		return nil, ErrFrameTooLarge
	}
	var hdr [FrameIDHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(idSize+len(payload)))
	hdr[4] = byte(t)
	binary.BigEndian.PutUint64(hdr[5:FrameIDHeaderLen], id)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...), nil
}

// WriteFrameID writes one identified (v2) frame:
// uint32 length (= 8 + payload) ‖ type ‖ uint64 request ID ‖ payload.
// Header and payload go out in a single Write so a frame is one syscall
// on the pipelined path. It allocates a frame buffer per call; hot
// paths should append with AppendFrameID into a pooled buffer or go
// through Writer instead.
func WriteFrameID(w io.Writer, t MsgType, id uint64, payload []byte) error {
	buf, err := AppendFrameID(nil, t, id, payload)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrameID reads one identified (v2) frame, rejecting oversized
// payloads before allocating. The payload is freshly allocated; prefer
// ReadFrameIDInto on hot paths.
func ReadFrameID(r io.Reader) (MsgType, uint64, []byte, error) {
	return ReadFrameIDInto(r, nil)
}

// ReadFrameIDInto reads one identified (v2) frame into dst's capacity,
// growing it only when the payload does not fit. The returned payload
// aliases the (possibly grown) dst: the caller owns it and must not
// release dst (e.g. back to a BufPool) until it is done with the
// payload and everything decoded-with-aliasing from it.
//
// The header is staged through dst's own storage rather than a local
// array: a stack array passed to io.ReadFull escapes through the
// io.Reader interface and would cost one heap allocation per frame.
func ReadFrameIDInto(r io.Reader, dst []byte) (MsgType, uint64, []byte, error) {
	hdr := grow(dst, FrameIDHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	t := MsgType(hdr[4])
	if n < idSize {
		return 0, 0, nil, ErrTruncated
	}
	if n-idSize > uint32(MaxPayload(t)) {
		return 0, 0, nil, ErrFrameTooLarge
	}
	id := binary.BigEndian.Uint64(hdr[5:FrameIDHeaderLen])
	payload := grow(dst, int(n-idSize))
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return t, id, payload, nil
}

// MaxBatch bounds the entries/GUIDs per batch frame.
const MaxBatch = 512

// ErrBatchSize reports a batch outside [1, MaxBatch].
var ErrBatchSize = errors.New("wire: batch size out of range")

// appendBatchCount validates and encodes the leading uint16 count.
func appendBatchCount(dst []byte, n int) ([]byte, error) {
	if n < 1 || n > MaxBatch {
		return nil, ErrBatchSize
	}
	return binary.BigEndian.AppendUint16(dst, uint16(n)), nil
}

// decodeBatchCount decodes and validates the leading uint16 count.
func decodeBatchCount(b []byte) (int, []byte, error) {
	if len(b) < 2 {
		return 0, nil, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	if n < 1 || n > MaxBatch {
		return 0, nil, ErrBatchSize
	}
	return n, b[2:], nil
}

// AppendBatchInsert encodes a MsgBatchInsert body:
// uint16 count ‖ count × entry.
func AppendBatchInsert(dst []byte, entries []store.Entry) ([]byte, error) {
	dst, err := appendBatchCount(dst, len(entries))
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if dst, err = AppendEntry(dst, e); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// DecodeBatchInsert decodes a MsgBatchInsert body. Trailing bytes are
// rejected: an honest encoder never leaves any.
func DecodeBatchInsert(b []byte) ([]store.Entry, error) {
	n, b, err := decodeBatchCount(b)
	if err != nil {
		return nil, err
	}
	entries := make([]store.Entry, n)
	for i := 0; i < n; i++ {
		if entries[i], b, err = DecodeEntry(b); err != nil {
			return nil, err
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after batch insert", len(b))
	}
	return entries, nil
}

// AppendBatchInsertAck encodes a MsgBatchInsertAck body:
// uint16 count ‖ count × acked flag (1 = stored, 0 = refused).
func AppendBatchInsertAck(dst []byte, acked []bool) ([]byte, error) {
	dst, err := appendBatchCount(dst, len(acked))
	if err != nil {
		return nil, err
	}
	for _, ok := range acked {
		f := byte(0)
		if ok {
			f = 1
		}
		dst = append(dst, f)
	}
	return dst, nil
}

// DecodeBatchInsertAck decodes a MsgBatchInsertAck body.
func DecodeBatchInsertAck(b []byte) ([]bool, error) {
	n, b, err := decodeBatchCount(b)
	if err != nil {
		return nil, err
	}
	if len(b) != n {
		return nil, ErrTruncated
	}
	acked := make([]bool, n)
	for i := 0; i < n; i++ {
		switch b[i] {
		case 0:
		case 1:
			acked[i] = true
		default:
			return nil, fmt.Errorf("wire: bad ack flag %d", b[i])
		}
	}
	return acked, nil
}

// AppendBatchLookup encodes a MsgBatchLookup body:
// uint16 count ‖ count × GUID.
func AppendBatchLookup(dst []byte, gs []guid.GUID) ([]byte, error) {
	dst, err := appendBatchCount(dst, len(gs))
	if err != nil {
		return nil, err
	}
	for _, g := range gs {
		dst = AppendGUID(dst, g)
	}
	return dst, nil
}

// DecodeBatchLookup decodes a MsgBatchLookup body.
func DecodeBatchLookup(b []byte) ([]guid.GUID, error) {
	n, b, err := decodeBatchCount(b)
	if err != nil {
		return nil, err
	}
	if len(b) != n*guid.Size {
		return nil, ErrTruncated
	}
	gs := make([]guid.GUID, n)
	for i := 0; i < n; i++ {
		if gs[i], b, err = DecodeGUID(b); err != nil {
			return nil, err
		}
	}
	return gs, nil
}

// AppendBatchLookupResp encodes a MsgBatchLookupResp body:
// uint16 count ‖ count × lookup response (found flag [+ entry]).
func AppendBatchLookupResp(dst []byte, rs []LookupResp) ([]byte, error) {
	dst, err := appendBatchCount(dst, len(rs))
	if err != nil {
		return nil, err
	}
	for _, r := range rs {
		if dst, err = AppendLookupResp(dst, r); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// DecodeBatchLookupResp decodes a MsgBatchLookupResp body.
func DecodeBatchLookupResp(b []byte) ([]LookupResp, error) {
	n, b, err := decodeBatchCount(b)
	if err != nil {
		return nil, err
	}
	rs := make([]LookupResp, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, ErrTruncated
		}
		switch b[0] {
		case 0:
			b = b[1:]
		case 1:
			e, rest, err := DecodeEntry(b[1:])
			if err != nil {
				return nil, err
			}
			rs[i] = LookupResp{Found: true, Entry: e}
			b = rest
		default:
			return nil, fmt.Errorf("wire: bad found flag %d", b[0])
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after batch lookup resp", len(b))
	}
	return rs, nil
}
