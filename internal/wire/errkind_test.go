package wire

import (
	"strings"
	"testing"
)

// TestErrorKindRoundTrip proves every kind survives encode/decode with
// its reason intact, including against a reused dirty dst.
func TestErrorKindRoundTrip(t *testing.T) {
	dirty := []byte("leftover")
	for _, kind := range []ErrKind{ErrKindGeneric, ErrKindBadRequest, ErrKindDraining, ErrKindShed, ErrKindInternal} {
		enc := AppendErrorKind(append([]byte(nil), dirty...), kind, "reason for "+kind.String())
		got, reason, err := DecodeErrorKind(enc[len(dirty):])
		if err != nil {
			t.Fatalf("kind %v: decode: %v", kind, err)
		}
		if got != kind {
			t.Errorf("kind round trip: got %v, want %v", got, kind)
		}
		if want := "reason for " + kind.String(); reason != want {
			t.Errorf("reason round trip: got %q, want %q", reason, want)
		}
	}
}

// TestShedDistinctFromDrainOnTheWire is the contract the client's
// backoff logic rests on: the bytes of a load-shed refusal and a
// draining refusal differ in their kind byte, so a decoder can
// distinguish them even with identical reason text.
func TestShedDistinctFromDrainOnTheWire(t *testing.T) {
	shed := AppendErrorKind(nil, ErrKindShed, "refused")
	drain := AppendErrorKind(nil, ErrKindDraining, "refused")
	if string(shed) == string(drain) {
		t.Fatalf("shed and drain refusals are byte-identical on the wire: %q", shed)
	}
	ks, _, err := DecodeErrorKind(shed)
	if err != nil || ks != ErrKindShed {
		t.Fatalf("shed decodes to (%v, %v), want ErrKindShed", ks, err)
	}
	kd, _, err := DecodeErrorKind(drain)
	if err != nil || kd != ErrKindDraining {
		t.Fatalf("drain decodes to (%v, %v), want ErrKindDraining", kd, err)
	}
}

// TestDecodeErrorKindEdges covers the legacy/hostile payload shapes.
func TestDecodeErrorKindEdges(t *testing.T) {
	// Empty payload: the legacy "no reason" error decodes as generic.
	if k, reason, err := DecodeErrorKind(nil); err != nil || k != ErrKindGeneric || reason != "" {
		t.Errorf("empty payload = (%v, %q, %v), want (generic, \"\", nil)", k, reason, err)
	}
	// A bare kind byte carries an empty reason.
	if k, reason, err := DecodeErrorKind([]byte{byte(ErrKindShed)}); err != nil || k != ErrKindShed || reason != "" {
		t.Errorf("bare kind = (%v, %q, %v), want (shed, \"\", nil)", k, reason, err)
	}
	// Unknown kinds pass through rather than failing the decode.
	if k, _, err := DecodeErrorKind([]byte{200, 'x'}); err != nil || k != ErrKind(200) {
		t.Errorf("unknown kind = (%v, %v), want (ErrKind(200), nil)", k, err)
	}
	// Oversized reasons are rejected on decode...
	big := AppendErrorKind(nil, ErrKindGeneric, strings.Repeat("x", MaxErrorLen))
	big = append(big, 'y') // one byte beyond what an honest encoder emits
	if _, _, err := DecodeErrorKind(big); err == nil {
		t.Error("oversized reason should fail to decode")
	}
	// ...and truncated on encode, so encode output always decodes.
	enc := AppendErrorKind(nil, ErrKindInternal, strings.Repeat("y", 2*MaxErrorLen))
	if len(enc) != 1+MaxErrorLen {
		t.Errorf("encoded oversized reason is %d bytes, want %d", len(enc), 1+MaxErrorLen)
	}
	if _, reason, err := DecodeErrorKind(enc); err != nil || len(reason) != MaxErrorLen {
		t.Errorf("truncated reason decode = (%d bytes, %v)", len(reason), err)
	}
}

// TestAppendErrorKindZeroAlloc proves the shed-reply encode path adds no
// allocations when the destination has capacity — admission control
// refuses requests on the hot read loop, so its reply must be free.
func TestAppendErrorKindZeroAlloc(t *testing.T) {
	dst := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		dst = AppendErrorKind(dst[:0], ErrKindShed, "overloaded: node in-flight limit")
	})
	if allocs != 0 {
		t.Errorf("AppendErrorKind allocates %.1f/op into a sized buffer, want 0", allocs)
	}
}
