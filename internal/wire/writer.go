// Writer: a coalescing, allocation-free frame writer for multiplexed
// connections.
//
// Many goroutines enqueue frames concurrently; whichever goroutine
// finds no flush in progress becomes the flusher and drains the pending
// buffer in a small loop, so frames enqueued while a syscall is in
// flight ride out together on the next one — writev-style coalescing
// without platform-specific syscalls. Under no contention a frame is
// exactly one Write; under contention N frames collapse into far fewer
// syscalls than N. Two persistent buffers ping-pong between "being
// appended to" and "being written", so the steady state allocates
// nothing.
package wire

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dmap/internal/trace"
)

// Writer serializes and coalesces frame writes to one connection. It is
// safe for concurrent use. Create with NewWriter.
type Writer struct {
	conn net.Conn
	// onFail, when set, is called exactly once with the first write
	// error. It runs outside the Writer's lock, so it may close the
	// connection or fail in-flight requests without deadlocking.
	onFail func(error)
	// timeout, when positive, is applied as a write deadline before
	// each flush syscall (stored as nanoseconds).
	timeout atomic.Int64

	mu       sync.Mutex
	pending  []byte // frames waiting for the flusher
	spare    []byte // the flusher's swap buffer
	flushing bool
	err      error // first write error; sticky
}

// NewWriter returns a Writer for conn. onFail (optional) observes the
// first write error — a partial frame write desynchronizes the stream
// for every user of the connection, so the callback should kill it.
func NewWriter(conn net.Conn, onFail func(error)) *Writer {
	return &Writer{conn: conn, onFail: onFail}
}

// SetTimeout sets the per-flush write deadline. Zero or negative
// disables it. Concurrent callers race benignly: some flush gets some
// caller's deadline, which is all a shared connection can promise.
func (w *Writer) SetTimeout(d time.Duration) { w.timeout.Store(int64(d)) }

// WriteFrameID enqueues one identified frame and flushes the pending
// buffer unless another goroutine is already doing so. A nil return
// means the frame was queued on a healthy connection — not that it
// reached the kernel; if a later flush fails, onFail fires and every
// queued frame dies with the connection.
func (w *Writer) WriteFrameID(t MsgType, id uint64, payload []byte) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	p, err := AppendFrameID(w.pending, t, id, payload)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	w.pending = p
	return w.flushLocked()
}

// WriteFrameIDTrace enqueues one traced identified frame (TraceBit set,
// payload prefixed with tc). Callers must have negotiated FeatTrace.
func (w *Writer) WriteFrameIDTrace(t MsgType, id uint64, tc trace.Context, payload []byte) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	p, err := AppendFrameIDTrace(w.pending, t, id, tc, payload)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	w.pending = p
	return w.flushLocked()
}

// flushLocked is called with w.mu held and the caller's frame already
// appended to pending; it returns with w.mu released. If a flush is in
// progress the frame is left for the flusher; otherwise this goroutine
// flushes until the pending buffer stays empty.
func (w *Writer) flushLocked() error {
	if w.flushing {
		w.mu.Unlock()
		return nil
	}
	w.flushing = true
	var failed error
	for w.err == nil && len(w.pending) > 0 {
		w.pending, w.spare = w.spare[:0], w.pending
		buf := w.spare
		w.mu.Unlock()
		if d := time.Duration(w.timeout.Load()); d > 0 {
			_ = w.conn.SetWriteDeadline(time.Now().Add(d))
		}
		_, werr := w.conn.Write(buf)
		w.mu.Lock()
		if werr != nil && w.err == nil {
			w.err = werr
			failed = werr
		}
	}
	w.flushing = false
	err := w.err
	w.mu.Unlock()
	if failed != nil && w.onFail != nil {
		// Only the flusher that recorded the error reports it, so onFail
		// fires exactly once.
		w.onFail(failed)
	}
	return err
}

// Err returns the sticky write error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
