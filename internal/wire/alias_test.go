// Tests for the explicit buffer-ownership contract (DESIGN.md §9):
// every Append* must treat dst as append-only — preserving whatever the
// caller already accumulated and reusing its capacity — and every
// Decode* must copy, so no decoded value aliases the buffer it was
// parsed from. The poison tests prove the second half the hard way:
// the source buffer is scribbled over after decoding, and the decoded
// values must not notice.
package wire

import (
	"bytes"
	"testing"

	"dmap/internal/guid"
	"dmap/internal/store"
	"dmap/internal/trace"
)

// appendCase exercises one Append function: encode onto a dirty dst
// with spare capacity, then hand the encoded suffix to check.
type appendCase struct {
	name   string
	append func(dst []byte) ([]byte, error)
	check  func(t *testing.T, encoded []byte)
}

func appendCases() []appendCase {
	entry := sampleEntry(3)
	tc := trace.Context{Trace: 0xABCDEF0123456789, Span: 99, Sampled: true}
	g := guid.New("alias-test")
	return []appendCase{
		{"AppendFrame", func(dst []byte) ([]byte, error) {
			return AppendFrame(dst, MsgLookup, []byte("payload"))
		}, func(t *testing.T, enc []byte) {
			typ, body, err := ReadFrame(bytes.NewReader(enc))
			if err != nil || typ != MsgLookup || string(body) != "payload" {
				t.Fatalf("ReadFrame = %v %q %v", typ, body, err)
			}
		}},
		{"AppendFrameID", func(dst []byte) ([]byte, error) {
			return AppendFrameID(dst, MsgLookupResp, 12345, []byte("resp"))
		}, func(t *testing.T, enc []byte) {
			typ, id, body, err := ReadFrameID(bytes.NewReader(enc))
			if err != nil || typ != MsgLookupResp || id != 12345 || string(body) != "resp" {
				t.Fatalf("ReadFrameID = %v %d %q %v", typ, id, body, err)
			}
		}},
		{"AppendFrameIDTrace", func(dst []byte) ([]byte, error) {
			return AppendFrameIDTrace(dst, MsgLookup, 77, tc, []byte("traced"))
		}, func(t *testing.T, enc []byte) {
			typ, id, body, err := ReadFrameID(bytes.NewReader(enc))
			if err != nil || !IsTraced(typ) || BaseType(typ) != MsgLookup || id != 77 {
				t.Fatalf("ReadFrameID = %v %d %v", typ, id, err)
			}
			gotTC, rest, err := DecodeTraceContext(body)
			if err != nil || gotTC != tc || string(rest) != "traced" {
				t.Fatalf("DecodeTraceContext = %+v %q %v", gotTC, rest, err)
			}
		}},
		{"AppendEntry", func(dst []byte) ([]byte, error) {
			return AppendEntry(dst, entry)
		}, func(t *testing.T, enc []byte) {
			dec, rest, err := DecodeEntry(enc)
			if err != nil || len(rest) != 0 || dec.GUID != entry.GUID || len(dec.NAs) != len(entry.NAs) {
				t.Fatalf("DecodeEntry = %+v rest=%d %v", dec, len(rest), err)
			}
		}},
		{"AppendGUID", func(dst []byte) ([]byte, error) {
			return AppendGUID(dst, g), nil
		}, func(t *testing.T, enc []byte) {
			dec, rest, err := DecodeGUID(enc)
			if err != nil || len(rest) != 0 || dec != g {
				t.Fatalf("DecodeGUID = %v rest=%d %v", dec, len(rest), err)
			}
		}},
		{"AppendError", func(dst []byte) ([]byte, error) {
			return AppendError(dst, "kaboom"), nil
		}, func(t *testing.T, enc []byte) {
			reason, err := DecodeError(enc)
			if err != nil || reason != "kaboom" {
				t.Fatalf("DecodeError = %q %v", reason, err)
			}
		}},
		{"AppendLookupResp", func(dst []byte) ([]byte, error) {
			return AppendLookupResp(dst, LookupResp{Found: true, Entry: entry})
		}, func(t *testing.T, enc []byte) {
			resp, err := DecodeLookupResp(enc)
			if err != nil || !resp.Found || resp.Entry.GUID != entry.GUID {
				t.Fatalf("DecodeLookupResp = %+v %v", resp, err)
			}
		}},
		{"AppendTraceContext", func(dst []byte) ([]byte, error) {
			return AppendTraceContext(dst, tc), nil
		}, func(t *testing.T, enc []byte) {
			got, rest, err := DecodeTraceContext(enc)
			if err != nil || len(rest) != 0 || got != tc {
				t.Fatalf("DecodeTraceContext = %+v rest=%d %v", got, len(rest), err)
			}
		}},
		{"AppendBatchInsert", func(dst []byte) ([]byte, error) {
			return AppendBatchInsert(dst, []store.Entry{entry, entry})
		}, func(t *testing.T, enc []byte) {
			es, err := DecodeBatchInsert(enc)
			if err != nil || len(es) != 2 || es[0].GUID != entry.GUID {
				t.Fatalf("DecodeBatchInsert = %d entries %v", len(es), err)
			}
		}},
		{"AppendBatchInsertAck", func(dst []byte) ([]byte, error) {
			return AppendBatchInsertAck(dst, []bool{true, false, true})
		}, func(t *testing.T, enc []byte) {
			acks, err := DecodeBatchInsertAck(enc)
			if err != nil || len(acks) != 3 || !acks[0] || acks[1] {
				t.Fatalf("DecodeBatchInsertAck = %v %v", acks, err)
			}
		}},
		{"AppendBatchLookup", func(dst []byte) ([]byte, error) {
			return AppendBatchLookup(dst, []guid.GUID{g, entry.GUID})
		}, func(t *testing.T, enc []byte) {
			gs, err := DecodeBatchLookup(enc)
			if err != nil || len(gs) != 2 || gs[0] != g {
				t.Fatalf("DecodeBatchLookup = %v %v", gs, err)
			}
		}},
		{"AppendBatchLookupResp", func(dst []byte) ([]byte, error) {
			return AppendBatchLookupResp(dst, []LookupResp{{Found: true, Entry: entry}, {}})
		}, func(t *testing.T, enc []byte) {
			rs, err := DecodeBatchLookupResp(enc)
			if err != nil || len(rs) != 2 || !rs[0].Found || rs[1].Found {
				t.Fatalf("DecodeBatchLookupResp = %d resps %v", len(rs), err)
			}
		}},
	}
}

// TestAppendPreservesReusedDst encodes onto a non-empty dst that has
// spare capacity — the shape every pooled call site passes — and
// verifies (1) the caller's prefix survives byte-for-byte, (2) the
// encoder reused dst's storage instead of reallocating, and (3) the
// encoded suffix decodes.
func TestAppendPreservesReusedDst(t *testing.T) {
	for _, tc := range appendCases() {
		t.Run(tc.name, func(t *testing.T) {
			prefix := []byte("caller-owned prefix \x00\xA5\xFF")
			dst := append(make([]byte, 0, 8<<10), prefix...)
			out, err := tc.append(dst)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out[:len(prefix)], prefix) {
				t.Fatalf("prefix clobbered: %q", out[:len(prefix)])
			}
			if &out[0] != &dst[0] {
				t.Fatal("encoder reallocated despite sufficient capacity")
			}
			tc.check(t, out[len(prefix):])
		})
	}
}

// TestAppendIntoDirtyCapacity re-encodes into the same truncated buffer
// twice: leftover garbage beyond len(dst) from a previous use must not
// leak into the new encoding.
func TestAppendIntoDirtyCapacity(t *testing.T) {
	for _, tc := range appendCases() {
		t.Run(tc.name, func(t *testing.T) {
			buf := bytes.Repeat([]byte{0xA5}, 8<<10) // dirty storage
			first, err := tc.append(buf[:0])
			if err != nil {
				t.Fatal(err)
			}
			snapshot := append([]byte(nil), first...)
			second, err := tc.append(first[:0]) // reuse, still dirty past len 0
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(second, snapshot) {
				t.Fatal("encoding differs when reusing dirty capacity")
			}
			tc.check(t, second)
		})
	}
}

// TestDecodedValuesSurvivePoisonedPut is the aliasing proof: decode
// out of a pooled buffer, release the buffer with poisoning on (Put
// overwrites every byte), and check the decoded values are untouched.
// Any Decode* that returned a view into the buffer instead of a copy
// fails here deterministically.
func TestDecodedValuesSurvivePoisonedPut(t *testing.T) {
	saved := Poison
	Poison = true
	defer func() { Poison = saved }()

	pool := NewBufPool(4)
	entry := sampleEntry(store.MaxNAs)
	g := guid.New("poison")

	buf := pool.Get(512)
	buf, err := AppendEntry(buf, entry)
	if err != nil {
		t.Fatal(err)
	}
	mark := len(buf)
	buf = AppendGUID(buf, g)
	buf = AppendError(buf, "poisoned reason")

	dec, _, err := DecodeEntry(buf[:mark])
	if err != nil {
		t.Fatal(err)
	}
	gotG, _, err := DecodeGUID(buf[mark:])
	if err != nil {
		t.Fatal(err)
	}
	reason, err := DecodeError(buf[mark+len(g):])
	if err != nil {
		t.Fatal(err)
	}

	pool.Put(buf) // poisons every byte of the backing array

	if dec.GUID != entry.GUID || dec.Version != entry.Version || dec.Meta != entry.Meta {
		t.Fatalf("entry header corrupted by Put: %+v", dec)
	}
	for i := range dec.NAs {
		if dec.NAs[i] != entry.NAs[i] {
			t.Fatalf("entry NA %d aliases the pooled buffer: %+v", i, dec.NAs[i])
		}
	}
	if gotG != g {
		t.Fatalf("GUID aliases the pooled buffer: %v", gotG)
	}
	if reason != "poisoned reason" {
		t.Fatalf("error string aliases the pooled buffer: %q", reason)
	}
}

// TestReadFrameIDIntoReuse checks the Decode-into contract: a dst with
// enough capacity is reused (no allocation, payload aliases dst), and
// an undersized dst is abandoned for grown storage.
func TestReadFrameIDIntoReuse(t *testing.T) {
	frame, err := AppendFrameID(nil, MsgLookup, 9, []byte("abcdef"))
	if err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, 0, 256)
	typ, id, payload, err := ReadFrameIDInto(bytes.NewReader(frame), dst)
	if err != nil || typ != MsgLookup || id != 9 || string(payload) != "abcdef" {
		t.Fatalf("ReadFrameIDInto = %v %d %q %v", typ, id, payload, err)
	}
	if cap(payload) != cap(dst) {
		t.Fatalf("payload cap %d, want dst's storage reused (cap %d)", cap(payload), cap(dst))
	}

	// Undersized dst: the read must still succeed on grown storage.
	small := make([]byte, 0, 2)
	typ, id, payload, err = ReadFrameIDInto(bytes.NewReader(frame), small)
	if err != nil || typ != MsgLookup || id != 9 || string(payload) != "abcdef" {
		t.Fatalf("grown ReadFrameIDInto = %v %d %q %v", typ, id, payload, err)
	}
	if cap(payload) == cap(small) {
		t.Fatal("payload claims to fit in a 2-byte dst")
	}
}

// TestReadFrameIntoReuse mirrors TestReadFrameIDIntoReuse for the v1
// frame reader.
func TestReadFrameIntoReuse(t *testing.T) {
	frame, err := AppendFrame(nil, MsgInsert, []byte("v1-payload"))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 0, 256)
	typ, payload, err := ReadFrameInto(bytes.NewReader(frame), dst)
	if err != nil || typ != MsgInsert || string(payload) != "v1-payload" {
		t.Fatalf("ReadFrameInto = %v %q %v", typ, payload, err)
	}
	if cap(payload) != cap(dst) {
		t.Fatalf("payload cap %d, want dst's storage reused (cap %d)", cap(payload), cap(dst))
	}
}
