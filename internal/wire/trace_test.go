package wire

import (
	"bytes"
	"errors"
	"testing"

	"dmap/internal/trace"
)

func TestTraceBitHelpers(t *testing.T) {
	tt := WithTrace(MsgLookup)
	if !IsTraced(tt) || IsTraced(MsgLookup) {
		t.Fatalf("IsTraced(%v)=%v, IsTraced(%v)=%v", tt, IsTraced(tt), MsgLookup, IsTraced(MsgLookup))
	}
	if BaseType(tt) != MsgLookup {
		t.Fatalf("BaseType(%v) = %v", tt, BaseType(tt))
	}
	if tt.String() != "traced+lookup" {
		t.Fatalf("String = %q", tt.String())
	}
	// Payload bound: traced frames get the base bound plus the prefix.
	if MaxPayload(tt) != MaxFrame+TraceContextLen {
		t.Fatalf("MaxPayload(traced lookup) = %d", MaxPayload(tt))
	}
	if MaxPayload(WithTrace(MsgBatchLookup)) != MaxBatchFrame+TraceContextLen {
		t.Fatalf("MaxPayload(traced batch) = %d", MaxPayload(WithTrace(MsgBatchLookup)))
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	for _, tc := range []trace.Context{
		{Trace: 1, Span: 0, Sampled: false},
		{Trace: 0xDEADBEEFCAFEF00D, Span: 42, Sampled: true},
	} {
		b := AppendTraceContext(nil, tc)
		if len(b) != TraceContextLen {
			t.Fatalf("encoded context = %d bytes, want %d", len(b), TraceContextLen)
		}
		got, rest, err := DecodeTraceContext(append(b, 0xAB))
		if err != nil {
			t.Fatalf("DecodeTraceContext: %v", err)
		}
		if got != tc {
			t.Fatalf("round trip = %+v, want %+v", got, tc)
		}
		if len(rest) != 1 || rest[0] != 0xAB {
			t.Fatalf("rest = %x", rest)
		}
	}

	// Malformed prefixes: short, unknown flags, zero trace ID.
	short := AppendTraceContext(nil, trace.Context{Trace: 1})[:TraceContextLen-1]
	if _, _, err := DecodeTraceContext(short); !errors.Is(err, ErrBadTraceContext) {
		t.Fatalf("short context err = %v", err)
	}
	badFlags := AppendTraceContext(nil, trace.Context{Trace: 1})
	badFlags[16] = 0x02
	if _, _, err := DecodeTraceContext(badFlags); !errors.Is(err, ErrBadTraceContext) {
		t.Fatalf("unknown-flag context err = %v", err)
	}
	zero := AppendTraceContext(nil, trace.Context{Trace: 0, Sampled: true})
	if _, _, err := DecodeTraceContext(zero); !errors.Is(err, ErrBadTraceContext) {
		t.Fatalf("zero-trace context err = %v", err)
	}
}

func TestWriteFrameIDTrace(t *testing.T) {
	var buf bytes.Buffer
	payload := AppendGUID(nil, [20]byte{9})
	tc := trace.Context{Trace: 0x1111, Span: 7, Sampled: true}
	const id = 0xABCDEF
	if err := WriteFrameIDTrace(&buf, MsgLookup, id, tc, payload); err != nil {
		t.Fatalf("WriteFrameIDTrace: %v", err)
	}
	typ, gotID, body, err := ReadFrameID(&buf)
	if err != nil {
		t.Fatalf("ReadFrameID: %v", err)
	}
	if !IsTraced(typ) || BaseType(typ) != MsgLookup || gotID != id {
		t.Fatalf("frame = (%v, %#x)", typ, gotID)
	}
	gotTC, rest, err := DecodeTraceContext(body)
	if err != nil || gotTC != tc {
		t.Fatalf("context = %+v, %v; want %+v", gotTC, err, tc)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("payload = %x, want %x", rest, payload)
	}

	// A max-size base payload still fits once the prefix is added.
	big := make([]byte, MaxFrame)
	var buf2 bytes.Buffer
	if err := WriteFrameIDTrace(&buf2, MsgPing, 1, tc, big); err != nil {
		t.Fatalf("max-size traced frame rejected: %v", err)
	}
}
