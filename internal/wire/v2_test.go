package wire

import (
	"bytes"
	"errors"
	"testing"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/store"
)

func testEntry(i int) store.Entry {
	return store.Entry{
		GUID:    [20]byte{byte(i), byte(i >> 8), 0xAB},
		NAs:     []store.NA{{AS: i%100 + 1, Addr: netaddr.AddrFromOctets(10, 0, byte(i>>8), byte(i))}},
		Version: uint64(i + 1),
		Meta:    uint32(i),
	}
}

func TestHelloRoundTrip(t *testing.T) {
	b := AppendHello(nil, Version2)
	if len(b) != 5 {
		t.Fatalf("legacy hello = %d bytes, want 5", len(b))
	}
	v, feat, err := DecodeHello(b)
	if err != nil || v != Version2 || feat != 0 {
		t.Fatalf("DecodeHello = %d, %#x, %v; want %d, 0, nil", v, feat, err, Version2)
	}
	for _, bad := range [][]byte{nil, {1, 2, 3, 4}, {0, 0, 0, 0, 2}, AppendHello(nil, 0)} {
		if _, _, err := DecodeHello(bad); err == nil {
			t.Fatalf("DecodeHello(%v) accepted malformed hello", bad)
		}
	}

	ack := AppendHelloAck(nil, Version2)
	if len(ack) != 1 {
		t.Fatalf("legacy hello ack = %d bytes, want 1", len(ack))
	}
	v, feat, err = DecodeHelloAck(ack)
	if err != nil || v != Version2 || feat != 0 {
		t.Fatalf("DecodeHelloAck = %d, %#x, %v; want %d, 0, nil", v, feat, err, Version2)
	}
	if _, _, err := DecodeHelloAck([]byte{0}); err == nil {
		t.Fatal("DecodeHelloAck accepted version 0")
	}
	if _, _, err := DecodeHelloAck(nil); err == nil {
		t.Fatal("DecodeHelloAck accepted empty payload")
	}
}

func TestHelloFeatRoundTrip(t *testing.T) {
	b := AppendHelloFeat(nil, Version2, FeatTrace)
	if len(b) != 6 {
		t.Fatalf("feature hello = %d bytes, want 6", len(b))
	}
	v, feat, err := DecodeHello(b)
	if err != nil || v != Version2 || feat != FeatTrace {
		t.Fatalf("DecodeHello = %d, %#x, %v; want %d, %#x, nil", v, feat, err, Version2, FeatTrace)
	}
	// A zero feat byte collapses to the canonical legacy encoding.
	if got := AppendHelloFeat(nil, Version2, 0); len(got) != 5 {
		t.Fatalf("zero-feat hello = %d bytes, want legacy 5", len(got))
	}

	ack := AppendHelloAckFeat(nil, Version2, FeatTrace)
	if len(ack) != 2 {
		t.Fatalf("feature hello ack = %d bytes, want 2", len(ack))
	}
	v, feat, err = DecodeHelloAck(ack)
	if err != nil || v != Version2 || feat != FeatTrace {
		t.Fatalf("DecodeHelloAck = %d, %#x, %v; want %d, %#x, nil", v, feat, err, Version2, FeatTrace)
	}
	if got := AppendHelloAckFeat(nil, Version2, 0); len(got) != 1 {
		t.Fatalf("zero-feat hello ack = %d bytes, want legacy 1", len(got))
	}
}

func TestFrameIDRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := AppendGUID(nil, [20]byte{7})
	const id = 0xDEADBEEFCAFE0001
	if err := WriteFrameID(&buf, MsgLookup, id, payload); err != nil {
		t.Fatalf("WriteFrameID: %v", err)
	}
	typ, gotID, got, err := ReadFrameID(&buf)
	if err != nil {
		t.Fatalf("ReadFrameID: %v", err)
	}
	if typ != MsgLookup || gotID != id || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = (%v, %#x, %x)", typ, gotID, got)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left after one frame", buf.Len())
	}
}

func TestFrameIDEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameID(&buf, MsgPing, 42, nil); err != nil {
		t.Fatalf("WriteFrameID: %v", err)
	}
	typ, id, payload, err := ReadFrameID(&buf)
	if err != nil || typ != MsgPing || id != 42 || len(payload) != 0 {
		t.Fatalf("round trip = (%v, %d, %x, %v)", typ, id, payload, err)
	}
}

func TestFrameIDBounds(t *testing.T) {
	// A length claim below the 8-byte ID is truncated, not a read of
	// negative payload.
	short := []byte{0, 0, 0, 7, byte(MsgPing), 0, 0, 0, 0, 0, 0, 0, 1}
	if _, _, _, err := ReadFrameID(bytes.NewReader(short)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("length < idSize: err = %v, want ErrTruncated", err)
	}

	// Non-batch types keep the small bound even in v2 framing.
	big := make([]byte, MaxFrame+1)
	if err := WriteFrameID(&bytes.Buffer{}, MsgInsert, 1, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized non-batch write: err = %v, want ErrFrameTooLarge", err)
	}
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgInsert), 0, 0, 0, 0, 0, 0, 0, 1}
	if _, _, _, err := ReadFrameID(bytes.NewReader(hostile)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("hostile length claim: err = %v, want ErrFrameTooLarge", err)
	}

	// Batch types get the larger bound: the same payload size that is
	// rejected for MsgInsert is accepted for MsgBatchInsert framing.
	var buf bytes.Buffer
	if err := WriteFrameID(&buf, MsgBatchInsert, 1, big); err != nil {
		t.Fatalf("batch frame rejected at %d bytes: %v", len(big), err)
	}
	if _, _, _, err := ReadFrameID(&buf); err != nil {
		t.Fatalf("batch frame read: %v", err)
	}
	over := make([]byte, MaxBatchFrame+1)
	if err := WriteFrameID(&bytes.Buffer{}, MsgBatchInsert, 1, over); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized batch write: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameIDPipelined(t *testing.T) {
	// Many frames written back-to-back demux in order with their IDs
	// intact — the invariant the client's reader goroutine relies on.
	var buf bytes.Buffer
	const n = 100
	for i := 0; i < n; i++ {
		if err := WriteFrameID(&buf, MsgLookup, uint64(i)<<32|1, AppendGUID(nil, [20]byte{byte(i)})); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		typ, id, payload, err := ReadFrameID(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != MsgLookup || id != uint64(i)<<32|1 || payload[0] != byte(i) {
			t.Fatalf("frame %d demuxed as (%v, %#x, %x)", i, typ, id, payload[:1])
		}
	}
}

func TestBatchInsertRoundTrip(t *testing.T) {
	entries := make([]store.Entry, 300)
	for i := range entries {
		entries[i] = testEntry(i)
	}
	b, err := AppendBatchInsert(nil, entries)
	if err != nil {
		t.Fatalf("AppendBatchInsert: %v", err)
	}
	if len(b) > MaxBatchFrame {
		t.Fatalf("batch of %d entries encodes to %d bytes > MaxBatchFrame", len(entries), len(b))
	}
	got, err := DecodeBatchInsert(b)
	if err != nil {
		t.Fatalf("DecodeBatchInsert: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range got {
		if got[i].GUID != entries[i].GUID || got[i].Version != entries[i].Version {
			t.Fatalf("entry %d mismatched after round trip", i)
		}
	}
	if _, err := DecodeBatchInsert(b[:len(b)-3]); err == nil {
		t.Fatal("truncated batch accepted")
	}
	if _, err := DecodeBatchInsert(append(b, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestBatchSizeBounds(t *testing.T) {
	if _, err := AppendBatchInsert(nil, nil); !errors.Is(err, ErrBatchSize) {
		t.Fatalf("empty batch: err = %v, want ErrBatchSize", err)
	}
	big := make([]guid.GUID, MaxBatch+1)
	if _, err := AppendBatchLookup(nil, big); !errors.Is(err, ErrBatchSize) {
		t.Fatalf("oversized batch: err = %v, want ErrBatchSize", err)
	}
	if _, err := AppendBatchLookup(nil, big[:MaxBatch]); err != nil {
		t.Fatalf("MaxBatch batch rejected: %v", err)
	}
	// A hostile count of zero or > MaxBatch is rejected on decode.
	if _, err := DecodeBatchLookup([]byte{0, 0}); !errors.Is(err, ErrBatchSize) {
		t.Fatalf("zero count: err = %v, want ErrBatchSize", err)
	}
	if _, err := DecodeBatchLookup([]byte{0xFF, 0xFF}); !errors.Is(err, ErrBatchSize) {
		t.Fatalf("huge count: err = %v, want ErrBatchSize", err)
	}
}

func TestBatchInsertAckRoundTrip(t *testing.T) {
	acked := []bool{true, false, true, true, false}
	b, err := AppendBatchInsertAck(nil, acked)
	if err != nil {
		t.Fatalf("AppendBatchInsertAck: %v", err)
	}
	got, err := DecodeBatchInsertAck(b)
	if err != nil {
		t.Fatalf("DecodeBatchInsertAck: %v", err)
	}
	for i := range acked {
		if got[i] != acked[i] {
			t.Fatalf("ack %d = %v, want %v", i, got[i], acked[i])
		}
	}
	if _, err := DecodeBatchInsertAck([]byte{0, 2, 1, 7}); err == nil {
		t.Fatal("bad ack flag accepted")
	}
	if _, err := DecodeBatchInsertAck(b[:len(b)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated ack: err = %v, want ErrTruncated", err)
	}
}

func TestBatchLookupRoundTrip(t *testing.T) {
	gs := make([]guid.GUID, 64)
	for i := range gs {
		gs[i] = guid.GUID{byte(i), 0x55}
	}
	b, err := AppendBatchLookup(nil, gs)
	if err != nil {
		t.Fatalf("AppendBatchLookup: %v", err)
	}
	got, err := DecodeBatchLookup(b)
	if err != nil {
		t.Fatalf("DecodeBatchLookup: %v", err)
	}
	for i := range gs {
		if got[i] != gs[i] {
			t.Fatalf("guid %d mismatched", i)
		}
	}
	if _, err := DecodeBatchLookup(b[:len(b)-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated lookup batch: err = %v, want ErrTruncated", err)
	}
	if _, err := DecodeBatchLookup(append(b, 9)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("trailing bytes: err = %v, want ErrTruncated", err)
	}
}

func TestBatchLookupRespRoundTrip(t *testing.T) {
	rs := []LookupResp{
		{Found: true, Entry: testEntry(1)},
		{},
		{Found: true, Entry: testEntry(2)},
	}
	b, err := AppendBatchLookupResp(nil, rs)
	if err != nil {
		t.Fatalf("AppendBatchLookupResp: %v", err)
	}
	got, err := DecodeBatchLookupResp(b)
	if err != nil {
		t.Fatalf("DecodeBatchLookupResp: %v", err)
	}
	if len(got) != 3 || !got[0].Found || got[1].Found || !got[2].Found {
		t.Fatalf("found flags mismatched: %+v", got)
	}
	if got[0].Entry.GUID != rs[0].Entry.GUID || got[2].Entry.Version != rs[2].Entry.Version {
		t.Fatal("entries mismatched after round trip")
	}
	if _, err := DecodeBatchLookupResp(b[:len(b)-2]); err == nil {
		t.Fatal("truncated resp batch accepted")
	}
	if _, err := DecodeBatchLookupResp(append(b, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
