package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/store"
)

func sampleEntry(nas int) store.Entry {
	e := store.Entry{GUID: guid.New("sample"), Version: 42, Meta: 7}
	for i := 0; i < nas; i++ {
		e.NAs = append(e.NAs, store.NA{AS: 100 + i, Addr: netaddr.AddrFromOctets(10, 0, 0, byte(i))})
	}
	return e
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello")
	if err := WriteFrame(&buf, MsgLookup, payload); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgLookup || !bytes.Equal(body, payload) {
		t.Errorf("got (%v, %q)", typ, body)
	}
}

func TestEmptyFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgPing || len(body) != 0 {
		t.Errorf("got (%v, %d bytes)", typ, len(body))
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgInsert, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("write err = %v", err)
	}
	// Hostile length header.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgInsert)}
	if _, _, err := ReadFrame(bytes.NewReader(hostile)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("read err = %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgLookup, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		if _, _, err := ReadFrame(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("cut=%d should fail", cut)
		}
	}
}

func TestEntryRoundTrip(t *testing.T) {
	for nas := 1; nas <= store.MaxNAs; nas++ {
		e := sampleEntry(nas)
		enc, err := AppendEntry(nil, e)
		if err != nil {
			t.Fatal(err)
		}
		dec, rest, err := DecodeEntry(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Errorf("nas=%d: %d leftover bytes", nas, len(rest))
		}
		if dec.GUID != e.GUID || dec.Version != e.Version || dec.Meta != e.Meta {
			t.Errorf("nas=%d: header mismatch: %+v", nas, dec)
		}
		if len(dec.NAs) != nas {
			t.Fatalf("nas=%d: decoded %d NAs", nas, len(dec.NAs))
		}
		for i := range dec.NAs {
			if dec.NAs[i] != e.NAs[i] {
				t.Errorf("NA %d mismatch", i)
			}
		}
	}
}

func TestEntryEncodedSize(t *testing.T) {
	// GUID(20) + version(8) + meta(4) + count(1) + n×(AS 4 + addr 4).
	// The §IV-A 352-bit figure covers the stored fields (GUID + 5 addrs
	// + meta); the wire adds the version and AS indices for the
	// freshest-wins protocol.
	for n := 1; n <= store.MaxNAs; n++ {
		enc, err := AppendEntry(nil, sampleEntry(n))
		if err != nil {
			t.Fatal(err)
		}
		if want := 20 + 8 + 4 + 1 + 8*n; len(enc) != want {
			t.Errorf("n=%d: encoded size = %d bytes, want %d", n, len(enc), want)
		}
	}
}

func TestEntryValidationOnBothSides(t *testing.T) {
	if _, err := AppendEntry(nil, store.Entry{GUID: guid.New("x")}); err == nil {
		t.Error("encoding invalid entry should fail")
	}
	// Zero NA count on the wire.
	e := sampleEntry(1)
	enc, _ := AppendEntry(nil, e)
	enc[guid.Size+8+4] = 0
	if _, _, err := DecodeEntry(enc); err == nil {
		t.Error("zero NA count should fail")
	}
	enc[guid.Size+8+4] = store.MaxNAs + 1
	if _, _, err := DecodeEntry(enc); err == nil {
		t.Error("excessive NA count should fail")
	}
}

func TestDecodeEntryTruncated(t *testing.T) {
	enc, _ := AppendEntry(nil, sampleEntry(3))
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeEntry(enc[:cut]); err == nil {
			t.Errorf("cut=%d should fail", cut)
		}
	}
}

func TestGUIDRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		g := guid.FromUint64(v)
		enc := AppendGUID(nil, g)
		dec, rest, err := DecodeGUID(enc)
		return err == nil && dec == g && len(rest) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, _, err := DecodeGUID(make([]byte, guid.Size-1)); !errors.Is(err, ErrTruncated) {
		t.Error("short GUID should fail")
	}
}

func TestLookupRespRoundTrip(t *testing.T) {
	// Not found.
	enc, err := AppendLookupResp(nil, LookupResp{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeLookupResp(enc)
	if err != nil || dec.Found {
		t.Errorf("not-found round trip: %+v, %v", dec, err)
	}
	// Found.
	e := sampleEntry(2)
	enc, err = AppendLookupResp(nil, LookupResp{Found: true, Entry: e})
	if err != nil {
		t.Fatal(err)
	}
	dec, err = DecodeLookupResp(enc)
	if err != nil || !dec.Found || dec.Entry.GUID != e.GUID {
		t.Errorf("found round trip: %+v, %v", dec, err)
	}
	// Garbage flag.
	if _, err := DecodeLookupResp([]byte{9}); err == nil {
		t.Error("bad flag should fail")
	}
	if _, err := DecodeLookupResp(nil); !errors.Is(err, ErrTruncated) {
		t.Error("empty should fail")
	}
}

func TestMsgTypeString(t *testing.T) {
	types := []MsgType{MsgInsert, MsgInsertAck, MsgLookup, MsgLookupResp, MsgDelete, MsgDeleteAck, MsgPing, MsgPong, MsgType(99)}
	for _, typ := range types {
		if typ.String() == "" {
			t.Errorf("type %d has empty name", typ)
		}
	}
}
