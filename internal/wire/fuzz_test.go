package wire

import (
	"bytes"
	"testing"

	"dmap/internal/netaddr"
	"dmap/internal/store"
)

// FuzzDecodeEntry hardens the wire decoder against arbitrary bytes: it
// must never panic, and anything it accepts must re-encode canonically.
func FuzzDecodeEntry(f *testing.F) {
	seed, _ := AppendEntry(nil, store.Entry{
		GUID:    [20]byte{1, 2, 3},
		NAs:     []store.NA{{AS: 7, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}},
		Version: 9,
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, rest, err := DecodeEntry(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatal("rest longer than input")
		}
		enc, err := AppendEntry(nil, e)
		if err != nil {
			t.Fatalf("decoded entry fails validation on re-encode: %v", err)
		}
		if !bytes.Equal(enc, data[:len(data)-len(rest)]) {
			t.Fatal("re-encoding differs from accepted bytes")
		}
	})
}

// FuzzDecodeLookupResp must never panic on arbitrary bytes.
func FuzzDecodeLookupResp(f *testing.F) {
	ok, _ := AppendLookupResp(nil, LookupResp{})
	f.Add(ok)
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeLookupResp(data)
	})
}

// FuzzDecodeFrame covers the full frame path the server and client run
// on every message: header + payload via ReadFrame, then the per-type
// payload decoder. It must never panic, never read past the frame it
// accepted, and accepted frames must round-trip canonically through
// WriteFrame.
func FuzzDecodeFrame(f *testing.F) {
	var seed bytes.Buffer
	entry, _ := AppendEntry(nil, store.Entry{
		GUID:    [20]byte{9},
		NAs:     []store.NA{{AS: 1, Addr: netaddr.AddrFromOctets(198, 51, 100, 7)}},
		Version: 3,
	})
	_ = WriteFrame(&seed, MsgInsert, entry)
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	_ = WriteFrame(&seed, MsgLookup, AppendGUID(nil, [20]byte{1}))
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	resp, _ := AppendLookupResp(nil, LookupResp{})
	_ = WriteFrame(&seed, MsgLookupResp, resp)
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	_ = WriteFrame(&seed, MsgError, AppendError(nil, "draining"))
	f.Add(append([]byte(nil), seed.Bytes()...))
	f.Add([]byte{0, 0, 0, 0, byte(MsgPing)})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0})
	f.Add(bytes.Repeat([]byte{7}, 300))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		typ, payload, err := ReadFrame(r)
		if err != nil {
			return
		}
		consumed := len(data) - r.Len()
		if want := 5 + len(payload); consumed != want {
			t.Fatalf("ReadFrame consumed %d bytes, want header+payload = %d", consumed, want)
		}
		// Canonical round trip: re-encoding the accepted frame must
		// reproduce the consumed bytes exactly.
		var out bytes.Buffer
		if err := WriteFrame(&out, typ, payload); err != nil {
			t.Fatalf("accepted frame fails re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatal("re-encoded frame differs from accepted bytes")
		}
		// The per-type payload decoders must be panic-free on whatever
		// the framing layer hands them.
		switch typ {
		case MsgInsert:
			_, _, _ = DecodeEntry(payload)
		case MsgLookup, MsgDelete:
			_, _, _ = DecodeGUID(payload)
		case MsgLookupResp:
			_, _ = DecodeLookupResp(payload)
		case MsgError:
			_, _ = DecodeError(payload)
		}
	})
}

// FuzzReadFrame must never panic or over-allocate on hostile streams.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, MsgPing, []byte("x"))
	f.Add(buf.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = ReadFrame(bytes.NewReader(data))
	})
}
