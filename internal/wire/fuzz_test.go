package wire

import (
	"bytes"
	"testing"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/store"
	"dmap/internal/trace"
)

// FuzzDecodeEntry hardens the wire decoder against arbitrary bytes: it
// must never panic, and anything it accepts must re-encode canonically.
func FuzzDecodeEntry(f *testing.F) {
	seed, _ := AppendEntry(nil, store.Entry{
		GUID:    [20]byte{1, 2, 3},
		NAs:     []store.NA{{AS: 7, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}},
		Version: 9,
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, rest, err := DecodeEntry(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatal("rest longer than input")
		}
		enc, err := AppendEntry(nil, e)
		if err != nil {
			t.Fatalf("decoded entry fails validation on re-encode: %v", err)
		}
		if !bytes.Equal(enc, data[:len(data)-len(rest)]) {
			t.Fatal("re-encoding differs from accepted bytes")
		}
	})
}

// FuzzDecodeLookupResp must never panic on arbitrary bytes.
func FuzzDecodeLookupResp(f *testing.F) {
	ok, _ := AppendLookupResp(nil, LookupResp{})
	f.Add(ok)
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeLookupResp(data)
	})
}

// FuzzDecodeFrame covers the full frame path the server and client run
// on every message: header + payload via ReadFrame, then the per-type
// payload decoder. It must never panic, never read past the frame it
// accepted, and accepted frames must round-trip canonically through
// WriteFrame.
func FuzzDecodeFrame(f *testing.F) {
	var seed bytes.Buffer
	entry, _ := AppendEntry(nil, store.Entry{
		GUID:    [20]byte{9},
		NAs:     []store.NA{{AS: 1, Addr: netaddr.AddrFromOctets(198, 51, 100, 7)}},
		Version: 3,
	})
	_ = WriteFrame(&seed, MsgInsert, entry)
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	_ = WriteFrame(&seed, MsgLookup, AppendGUID(nil, [20]byte{1}))
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	resp, _ := AppendLookupResp(nil, LookupResp{})
	_ = WriteFrame(&seed, MsgLookupResp, resp)
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	_ = WriteFrame(&seed, MsgError, AppendError(nil, "draining"))
	f.Add(append([]byte(nil), seed.Bytes()...))
	f.Add([]byte{0, 0, 0, 0, byte(MsgPing)})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0})
	f.Add(bytes.Repeat([]byte{7}, 300))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		typ, payload, err := ReadFrame(r)
		if err != nil {
			return
		}
		consumed := len(data) - r.Len()
		if want := 5 + len(payload); consumed != want {
			t.Fatalf("ReadFrame consumed %d bytes, want header+payload = %d", consumed, want)
		}
		// Canonical round trip: re-encoding the accepted frame must
		// reproduce the consumed bytes exactly.
		var out bytes.Buffer
		if err := WriteFrame(&out, typ, payload); err != nil {
			t.Fatalf("accepted frame fails re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatal("re-encoded frame differs from accepted bytes")
		}
		// The per-type payload decoders must be panic-free on whatever
		// the framing layer hands them.
		switch typ {
		case MsgInsert:
			_, _, _ = DecodeEntry(payload)
		case MsgLookup, MsgDelete:
			_, _, _ = DecodeGUID(payload)
		case MsgLookupResp:
			_, _ = DecodeLookupResp(payload)
		case MsgError:
			_, _ = DecodeError(payload)
		}
	})
}

// FuzzReadFrame must never panic or over-allocate on hostile streams.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, MsgPing, []byte("x"))
	f.Add(buf.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = ReadFrame(bytes.NewReader(data))
	})
}

// FuzzDecodeFrameV2 covers the identified (v2) frame path: header with
// request ID via ReadFrameID, then the per-type payload decoder —
// including the batch codecs and handshake bodies. Accepted frames must
// round-trip canonically through WriteFrameID with the same ID, and the
// per-type decoders must be panic-free.
func FuzzDecodeFrameV2(f *testing.F) {
	var seed bytes.Buffer
	entry, _ := AppendEntry(nil, store.Entry{
		GUID:    [20]byte{9},
		NAs:     []store.NA{{AS: 1, Addr: netaddr.AddrFromOctets(198, 51, 100, 7)}},
		Version: 3,
	})
	batch, _ := AppendBatchInsert(nil, []store.Entry{
		{GUID: [20]byte{1}, NAs: []store.NA{{AS: 2, Addr: netaddr.AddrFromOctets(10, 0, 0, 9)}}, Version: 1},
		{GUID: [20]byte{2}, NAs: []store.NA{{AS: 3, Addr: netaddr.AddrFromOctets(10, 0, 0, 8)}}, Version: 2},
	})
	_ = WriteFrameID(&seed, MsgBatchInsert, 1, batch)
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	lookups, _ := AppendBatchLookup(nil, []guid.GUID{{1}, {2}, {3}})
	_ = WriteFrameID(&seed, MsgBatchLookup, 2, lookups)
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	resp, _ := AppendBatchLookupResp(nil, []LookupResp{{}, {Found: true, Entry: mustEntry(entry)}})
	_ = WriteFrameID(&seed, MsgBatchLookupResp, 3, resp)
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	acks, _ := AppendBatchInsertAck(nil, []bool{true, false})
	_ = WriteFrameID(&seed, MsgBatchInsertAck, 4, acks)
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	_ = WriteFrameID(&seed, MsgInsert, 5, entry)
	f.Add(append([]byte(nil), seed.Bytes()...))
	// Hostile shapes: length below the ID width, huge length claim.
	f.Add([]byte{0, 0, 0, 3, byte(MsgPing), 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgBatchInsert), 0, 0, 0, 0, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		typ, id, payload, err := ReadFrameID(r)
		if err != nil {
			return
		}
		consumed := len(data) - r.Len()
		if want := 13 + len(payload); consumed != want {
			t.Fatalf("ReadFrameID consumed %d bytes, want header+payload = %d", consumed, want)
		}
		var out bytes.Buffer
		if err := WriteFrameID(&out, typ, id, payload); err != nil {
			t.Fatalf("accepted frame fails re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatal("re-encoded frame differs from accepted bytes")
		}
		switch typ {
		case MsgInsert:
			_, _, _ = DecodeEntry(payload)
		case MsgLookup, MsgDelete:
			_, _, _ = DecodeGUID(payload)
		case MsgLookupResp:
			_, _ = DecodeLookupResp(payload)
		case MsgError:
			_, _ = DecodeError(payload)
		case MsgHello:
			_, _, _ = DecodeHello(payload)
		case MsgHelloAck:
			_, _, _ = DecodeHelloAck(payload)
		case MsgBatchInsert:
			_, _ = DecodeBatchInsert(payload)
		case MsgBatchInsertAck:
			_, _ = DecodeBatchInsertAck(payload)
		case MsgBatchLookup:
			_, _ = DecodeBatchLookup(payload)
		case MsgBatchLookupResp:
			_, _ = DecodeBatchLookupResp(payload)
		}
	})
}

// FuzzDecodeBatchInsert checks the batch entry codec never panics and
// re-encodes canonically.
func FuzzDecodeBatchInsert(f *testing.F) {
	seed, _ := AppendBatchInsert(nil, []store.Entry{
		{GUID: [20]byte{4}, NAs: []store.NA{{AS: 1, Addr: netaddr.AddrFromOctets(10, 1, 2, 3)}}, Version: 7},
	})
	f.Add(seed)
	f.Add([]byte{0, 1})
	f.Add(bytes.Repeat([]byte{0xAA}, 128))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeBatchInsert(data)
		if err != nil {
			return
		}
		enc, err := AppendBatchInsert(nil, entries)
		if err != nil {
			t.Fatalf("decoded batch fails re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatal("re-encoding differs from accepted bytes")
		}
	})
}

// FuzzDecodeHello hardens the handshake decoders.
func FuzzDecodeHello(f *testing.F) {
	f.Add(AppendHello(nil, Version2))
	f.Add(AppendHelloAck(nil, Version1))
	f.Add(AppendHelloFeat(nil, Version2, FeatTrace))
	f.Add(AppendHelloAckFeat(nil, Version2, FeatTrace))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = DecodeHello(data)
		_, _, _ = DecodeHelloAck(data)
	})
}

// FuzzDecodeTraceContext hardens the trace-context prefix decoder: it
// must never panic, and accepted prefixes must re-encode canonically.
func FuzzDecodeTraceContext(f *testing.F) {
	f.Add(AppendTraceContext(nil, trace.Context{Trace: 0xDEADBEEF, Span: 3, Sampled: true}))
	f.Add(AppendTraceContext(nil, trace.Context{Trace: 1}))
	f.Add(append(AppendTraceContext(nil, trace.Context{Trace: 7, Sampled: true}), 0xAA, 0xBB))
	f.Add(bytes.Repeat([]byte{0xFF}, TraceContextLen))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		tc, rest, err := DecodeTraceContext(data)
		if err != nil {
			return
		}
		if tc.Trace == 0 {
			t.Fatal("accepted zero trace ID")
		}
		if len(rest) != len(data)-TraceContextLen {
			t.Fatalf("rest = %d bytes, want %d", len(rest), len(data)-TraceContextLen)
		}
		enc := AppendTraceContext(nil, tc)
		if !bytes.Equal(enc, data[:TraceContextLen]) {
			t.Fatalf("re-encoding differs: %x vs %x", enc, data[:TraceContextLen])
		}
	})
}

func mustEntry(b []byte) store.Entry {
	e, _, err := DecodeEntry(b)
	if err != nil {
		panic(err)
	}
	return e
}
