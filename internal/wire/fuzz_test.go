package wire

import (
	"bytes"
	"testing"

	"dmap/internal/netaddr"
	"dmap/internal/store"
)

// FuzzDecodeEntry hardens the wire decoder against arbitrary bytes: it
// must never panic, and anything it accepts must re-encode canonically.
func FuzzDecodeEntry(f *testing.F) {
	seed, _ := AppendEntry(nil, store.Entry{
		GUID:    [20]byte{1, 2, 3},
		NAs:     []store.NA{{AS: 7, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}},
		Version: 9,
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, rest, err := DecodeEntry(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatal("rest longer than input")
		}
		enc, err := AppendEntry(nil, e)
		if err != nil {
			t.Fatalf("decoded entry fails validation on re-encode: %v", err)
		}
		if !bytes.Equal(enc, data[:len(data)-len(rest)]) {
			t.Fatal("re-encoding differs from accepted bytes")
		}
	})
}

// FuzzDecodeLookupResp must never panic on arbitrary bytes.
func FuzzDecodeLookupResp(f *testing.F) {
	ok, _ := AppendLookupResp(nil, LookupResp{})
	f.Add(ok)
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeLookupResp(data)
	})
}

// FuzzReadFrame must never panic or over-allocate on hostile streams.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, MsgPing, []byte("x"))
	f.Add(buf.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = ReadFrame(bytes.NewReader(data))
	})
}
