package wire

import (
	"os"
	"testing"
)

// TestMain lets scripts/check.sh run the whole package with buffer
// poisoning on (DMAP_POISON_BUFS=1): every BufPool.Put scribbles over
// the released buffer, so any decoded value that illegally aliases
// pooled storage fails loudly under load instead of flaking in
// production.
func TestMain(m *testing.M) {
	if os.Getenv("DMAP_POISON_BUFS") == "1" {
		Poison = true
	}
	os.Exit(m.Run())
}
