module dmap

go 1.22
